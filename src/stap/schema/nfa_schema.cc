#include "stap/schema/nfa_schema.h"

#include <unordered_set>
#include <utility>

#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/automata/state_set_hash.h"
#include "stap/base/check.h"
#include "stap/regex/glushkov.h"
#include "stap/regex/parser.h"
#include "stap/schema/text_format.h"

namespace stap {

namespace {

// Relabels an NFA over the type alphabet into one over Σ via μ.
Nfa TypeImage(const Nfa& content, const std::vector<int>& mu,
              int num_symbols) {
  Nfa image(std::max(content.num_states(), 1), num_symbols);
  for (int q : content.initial()) image.AddInitial(q);
  for (int q = 0; q < content.num_states(); ++q) {
    if (content.IsFinal(q)) image.SetFinal(q);
    for (int t = 0; t < content.num_symbols(); ++t) {
      for (int r : content.Next(q, t)) {
        image.AddTransition(q, mu[t], r);
      }
    }
  }
  return image;
}

// The type automaton of an EDTD(NFA), with the usual state convention
// (state 0 = q_init, state 1 + τ = type τ). Occurring types come from the
// trimmed content NFAs.
Nfa TypeAutomatonNfa(const EdtdNfa& edtd) {
  Nfa automaton(edtd.num_types() + 1, edtd.sigma.size());
  automaton.AddInitial(0);
  for (int tau : edtd.start_types) {
    automaton.AddTransition(0, edtd.mu[tau], tau + 1);
  }
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    Nfa trimmed = edtd.content[tau].Trimmed();
    std::vector<bool> occurs(edtd.num_types(), false);
    for (int q = 0; q < trimmed.num_states(); ++q) {
      for (int t = 0; t < edtd.num_types(); ++t) {
        if (!trimmed.Next(q, t).empty()) occurs[t] = true;
      }
    }
    for (int t = 0; t < edtd.num_types(); ++t) {
      if (occurs[t]) {
        automaton.AddTransition(tau + 1, edtd.mu[t], t + 1);
      }
    }
  }
  return automaton;
}

std::vector<int> PossibleTypesNfa(const EdtdNfa& edtd, const Tree& subtree) {
  std::vector<std::vector<int>> child_types;
  child_types.reserve(subtree.children.size());
  for (const Tree& child : subtree.children) {
    child_types.push_back(PossibleTypesNfa(edtd, child));
    if (child_types.back().empty()) return {};
  }
  std::vector<int> result;
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    if (edtd.mu[tau] != subtree.label) continue;
    const Nfa& nfa = edtd.content[tau];
    StateSet states = nfa.initial();
    for (const std::vector<int>& options : child_types) {
      StateSet next;
      for (int q : states) {
        for (int candidate : options) {
          for (int r : nfa.Next(q, candidate)) StateSetInsert(next, r);
        }
      }
      states = std::move(next);
      if (states.empty()) break;
    }
    for (int q : states) {
      if (nfa.IsFinal(q)) {
        result.push_back(tau);
        break;
      }
    }
  }
  return result;
}

}  // namespace

EdtdNfa EdtdNfa::FromEdtd(const Edtd& edtd) {
  EdtdNfa result;
  result.sigma = edtd.sigma;
  result.types = edtd.types;
  result.mu = edtd.mu;
  result.start_types = edtd.start_types;
  result.content.reserve(edtd.content.size());
  for (const Dfa& dfa : edtd.content) result.content.push_back(dfa.ToNfa());
  return result;
}

int64_t EdtdNfa::Size() const {
  int64_t total = sigma.size() + num_types() +
                  static_cast<int64_t>(start_types.size());
  for (const Nfa& nfa : content) total += nfa.Size();
  return total;
}

bool EdtdNfa::Accepts(const Tree& tree) const {
  if (tree.label < 0 || tree.label >= sigma.size()) return false;
  for (int tau : PossibleTypesNfa(*this, tree)) {
    if (StateSetContains(start_types, tau)) return true;
  }
  return false;
}

Edtd EdtdNfa::Determinized() const {
  Edtd result;
  result.sigma = sigma;
  result.types = types;
  result.mu = mu;
  result.start_types = start_types;
  result.content.reserve(content.size());
  for (const Nfa& nfa : content) result.content.push_back(MinimizeNfa(nfa));
  result.CheckWellFormed();
  return result;
}

StatusOr<EdtdNfa> ParseSchemaNfa(std::string_view text) {
  StatusOr<SchemaDeclarations> decls = ParseSchemaDeclarations(text);
  if (!decls.ok()) return decls.status();
  EdtdNfa edtd;
  edtd.sigma = decls->sigma;
  edtd.types = decls->types;
  edtd.mu = decls->mu;
  edtd.start_types = decls->start_types;
  for (const std::string& source : decls->content_sources) {
    StatusOr<RegexPtr> regex =
        ParseRegex(source, &edtd.types, /*intern_new_symbols=*/false);
    if (!regex.ok()) return regex.status();
    edtd.content.push_back(
        GlushkovAutomaton(**regex, edtd.types.size()).Trimmed());
  }
  return edtd;
}

bool IsSingleTypeNfa(const EdtdNfa& edtd) {
  Nfa automaton = TypeAutomatonNfa(edtd);
  for (int q = 0; q < automaton.num_states(); ++q) {
    for (int a = 0; a < automaton.num_symbols(); ++a) {
      if (automaton.Next(q, a).size() > 1) return false;
    }
  }
  return true;
}

bool IncludedInSingleTypeNfa(const EdtdNfa& d1, const EdtdNfa& d2) {
  STAP_CHECK(d1.sigma == d2.sigma);
  STAP_CHECK(IsSingleTypeNfa(d2));
  const int num_symbols = d1.sigma.size();
  Nfa a1 = TypeAutomatonNfa(d1);
  Nfa a2 = TypeAutomatonNfa(d2);

  // Root labels of d1 must be allowed by d2.
  std::vector<bool> d2_root(num_symbols, false);
  for (int tau : d2.start_types) d2_root[d2.mu[tau]] = true;
  for (int tau : d1.start_types) {
    if (!d2_root[d1.mu[tau]]) return false;
  }

  // Pair walk (Lemma 5.1): (state of A1, state of A2); A2 deterministic.
  std::unordered_set<uint64_t, U64Hash> seen;
  std::vector<std::pair<int, int>> worklist;
  auto visit = [&](int s1, int s2) {
    if (seen.insert(PackPair(s1, s2)).second) worklist.emplace_back(s1, s2);
  };
  visit(0, 0);
  size_t processed = 0;
  while (processed < worklist.size()) {
    auto [s1, s2] = worklist[processed];
    ++processed;
    if (s1 != 0) {
      STAP_CHECK(s2 != 0);
      // Content inclusion with NFA right-hand side: on-the-fly subset
      // construction (the PSPACE-flavored step of Lemma 5.1).
      Nfa image1 = TypeImage(d1.content[s1 - 1], d1.mu, num_symbols);
      Nfa image2 = TypeImage(d2.content[s2 - 1], d2.mu, num_symbols);
      if (!NfaIncludedInNfa(image1, image2)) return false;
    }
    for (int a = 0; a < num_symbols; ++a) {
      const StateSet& next1 = a1.Next(s1, a);
      if (next1.empty()) continue;
      const StateSet& next2 = a2.Next(s2, a);
      if (next2.empty()) continue;  // the content check catches this case
      for (int t1 : next1) visit(t1, next2[0]);
    }
  }
  return true;
}

}  // namespace stap
