// Streaming (SAX-style) one-pass validation against a DFA-based XSD.
//
// The EDC constraint's operational payoff (Section 1, [21]): a document
// can be validated top-down in a single pass with O(depth) memory and
// O(1) automaton work per event. The validator consumes start/end element
// events; after the first violation it stays rejected but keeps accepting
// events (so callers can drain their parser).
//
//   StreamingValidator v(&xsd);
//   v.StartElement(book); v.StartElement(title); v.EndElement();
//   v.EndElement();
//   bool ok = v.EndDocument();
#ifndef STAP_SCHEMA_STREAMING_H_
#define STAP_SCHEMA_STREAMING_H_

#include <vector>

#include "stap/schema/single_type.h"
#include "stap/tree/tree.h"

namespace stap {

class StreamingValidator {
 public:
  // `xsd` must outlive the validator.
  explicit StreamingValidator(const DfaXsd* xsd);

  // Feeds the opening tag of an element labeled `symbol`. Returns ok().
  bool StartElement(int symbol);

  // Feeds a closing tag. Returns ok().
  bool EndElement();

  // True after the (single) root element closed with no violations.
  bool EndDocument();

  // False once any violation has been seen.
  bool ok() const { return ok_; }

  // Number of currently open elements.
  int depth() const { return static_cast<int>(stack_.size()); }

 private:
  struct Frame {
    int xsd_state;      // type of the open element
    int content_state;  // run of its content DFA over the children so far
  };

  const DfaXsd* xsd_;
  std::vector<Frame> stack_;
  bool ok_ = true;
  bool saw_root_ = false;
};

// Convenience: validates a materialized tree through the streaming
// interface (used to cross-check against DfaXsd::Accepts).
bool ValidateStreaming(const DfaXsd& xsd, const Tree& tree);

}  // namespace stap

#endif  // STAP_SCHEMA_STREAMING_H_
