// Textual schema format.
//
// A human-readable notation for EDTDs (and DTDs as the degenerate case),
// used by the examples and tests:
//
//   # comment
//   start Book Article
//   type Book    : book    -> Title Chapter+
//   type Title   : title   -> %
//   type Chapter : chapter -> (Section | %)
//
// Each `type` rule declares a type name, its Σ-label, and a content regex
// over *type names* (syntax of regex/parser.h). `start` lists start types.
// Σ consists of all labels mentioned; ∆ of all type names.
#ifndef STAP_SCHEMA_TEXT_FORMAT_H_
#define STAP_SCHEMA_TEXT_FORMAT_H_

#include <string>
#include <string_view>

#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"

namespace stap {

class CompileCache;

// Parses the textual format into an EDTD (not automatically reduced).
// The parsed content regexes are retained in Edtd::content_source, so
// counted repetition (r{n,m}) survives later export.
StatusOr<Edtd> ParseSchema(std::string_view input);

// As above, but memoizes content-model compilation (Glushkov →
// determinize → minimize) through `cache`, so repeated loads of the same
// schema — or of schemas sharing content models — compile each distinct
// model once per process. A null cache compiles directly. Thread-safe
// for concurrent calls sharing one cache.
StatusOr<Edtd> ParseSchema(std::string_view input, CompileCache* cache);

// As above with a compilation budget: content-model expansion (counted
// repetition), determinization, and minimization charge `budget` and fail
// with kResourceExhausted when it trips. A non-null budget bypasses the
// cache so one caller's quota never decides another's entry.
StatusOr<Edtd> ParseSchema(std::string_view input, CompileCache* cache,
                           Budget* budget);

// The raw declarations of a schema file, before content compilation —
// shared by the DFA-content (ParseSchema) and NFA-content
// (ParseSchemaNfa) pipelines.
struct SchemaDeclarations {
  Alphabet sigma;
  Alphabet types;
  std::vector<int> mu;
  std::vector<std::string> content_sources;  // regex text per type
  std::vector<int> start_types;              // sorted
};

StatusOr<SchemaDeclarations> ParseSchemaDeclarations(std::string_view input);

// Renders an EDTD back into the textual format; content DFAs are converted
// to regular expressions by state elimination.
std::string SchemaToText(const Edtd& edtd);

}  // namespace stap

#endif  // STAP_SCHEMA_TEXT_FORMAT_H_
