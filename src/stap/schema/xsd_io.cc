#include "stap/schema/xsd_io.h"

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "stap/base/check.h"
#include "stap/regex/bkw.h"
#include "stap/regex/dre_approx.h"
#include "stap/regex/from_dfa.h"
#include "stap/regex/glushkov.h"
#include "stap/tree/xml.h"

namespace stap {

namespace {

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

std::string TypeNameOfState(const DfaXsd& xsd, int state) {
  return "t" + std::to_string(state) + "_" +
         xsd.sigma.Name(xsd.state_label[state]);
}

// Wraps `particle` so that it carries the given occurrence bounds.
XmlElement WithOccurs(XmlElement particle, const char* min, const char* max) {
  XmlElement wrapper;
  wrapper.name = "xs:sequence";
  wrapper.attributes.push_back({"minOccurs", min});
  wrapper.attributes.push_back({"maxOccurs", max});
  wrapper.children.push_back(std::move(particle));
  return wrapper;
}

XmlElement ParticleFromRegex(const DfaXsd& xsd, int state,
                             const Regex& regex) {
  switch (regex.kind()) {
    case RegexKind::kEmptySet: {
      // Unsatisfiable content; an empty choice (flagged, since W3C XSD
      // has no direct equivalent). Reduced schemas never produce this.
      XmlElement choice;
      choice.name = "xs:choice";
      choice.attributes.push_back({"stap-empty", "true"});
      return choice;
    }
    case RegexKind::kEpsilon: {
      XmlElement sequence;
      sequence.name = "xs:sequence";
      return sequence;
    }
    case RegexKind::kSymbol: {
      int symbol = regex.symbol();
      int child_state = xsd.automaton.Next(state, symbol);
      STAP_CHECK(child_state != kNoState);  // content is trim
      XmlElement element;
      element.name = "xs:element";
      element.attributes.push_back({"name", xsd.sigma.Name(symbol)});
      element.attributes.push_back({"type", TypeNameOfState(xsd, child_state)});
      return element;
    }
    case RegexKind::kConcat: {
      XmlElement sequence;
      sequence.name = "xs:sequence";
      for (const RegexPtr& child : regex.children()) {
        sequence.children.push_back(ParticleFromRegex(xsd, state, *child));
      }
      return sequence;
    }
    case RegexKind::kUnion: {
      XmlElement choice;
      choice.name = "xs:choice";
      for (const RegexPtr& child : regex.children()) {
        choice.children.push_back(ParticleFromRegex(xsd, state, *child));
      }
      return choice;
    }
    case RegexKind::kStar:
      return WithOccurs(
          ParticleFromRegex(xsd, state, *regex.children()[0]), "0",
          "unbounded");
    case RegexKind::kPlus:
      return WithOccurs(
          ParticleFromRegex(xsd, state, *regex.children()[0]), "1",
          "unbounded");
    case RegexKind::kOptional:
      return WithOccurs(ParticleFromRegex(xsd, state, *regex.children()[0]),
                        "0", "1");
  }
  return XmlElement{};
}

// ---------------------------------------------------------------------------
// Import
// ---------------------------------------------------------------------------

struct Occurs {
  bool optional = false;   // minOccurs == 0
  bool unbounded = false;  // maxOccurs == "unbounded"
};

StatusOr<Occurs> ReadOccurs(const XmlElement& element) {
  Occurs occurs;
  if (const std::string* value = element.FindAttribute("minOccurs")) {
    if (*value == "0") {
      occurs.optional = true;
    } else if (*value != "1") {
      return UnimplementedError("minOccurs='" + *value +
                                "' is outside the supported subset");
    }
  }
  if (const std::string* value = element.FindAttribute("maxOccurs")) {
    if (*value == "unbounded") {
      occurs.unbounded = true;
    } else if (*value != "1") {
      return UnimplementedError("maxOccurs='" + *value +
                                "' is outside the supported subset");
    }
  }
  return occurs;
}

RegexPtr ApplyOccurs(RegexPtr regex, const Occurs& occurs) {
  if (occurs.optional && occurs.unbounded) return Regex::Star(std::move(regex));
  if (occurs.unbounded) return Regex::Plus(std::move(regex));
  if (occurs.optional) return Regex::Optional(std::move(regex));
  return regex;
}

class Importer {
 public:
  StatusOr<Edtd> Run(std::string_view xml) {
    StatusOr<XmlElement> document = ParseXmlDocument(xml);
    if (!document.ok()) return document.status();
    if (document->name != "xs:schema" && document->name != "schema") {
      return InvalidArgumentError("root element must be xs:schema");
    }

    // Pass 1: collect named complex types and global elements.
    std::vector<std::pair<std::string, std::string>> globals;  // name, type
    for (const XmlElement& child : document->children) {
      if (child.name == "xs:complexType") {
        const std::string* name = child.FindAttribute("name");
        if (name == nullptr) {
          return InvalidArgumentError(
              "top-level xs:complexType must be named");
        }
        complex_types_[*name] = &child;
      } else if (child.name == "xs:element") {
        const std::string* name = child.FindAttribute("name");
        if (name == nullptr) {
          return InvalidArgumentError("global xs:element must be named");
        }
        StatusOr<std::string> type = ElementTypeName(child);
        if (!type.ok()) return type.status();
        globals.emplace_back(*name, *type);
      } else if (child.name == "xs:annotation") {
        continue;
      } else {
        return UnimplementedError("unsupported top-level element <" +
                                  child.name + ">");
      }
    }

    // Pass 2: discover all (element name, type name) pairings and compile
    // their content expressions. The worklist grows as particles mention
    // new pairings.
    for (const auto& [element_name, type_name] : globals) {
      int type_id = InternType(element_name, type_name);
      StateSetInsert(edtd_.start_types, type_id);
    }
    for (size_t done = 0; done < discovered_.size(); ++done) {
      std::string type_name = discovered_[done].second;
      if (content_regex_.count(type_name) > 0) continue;
      auto it = complex_types_.find(type_name);
      if (it == complex_types_.end()) {
        return InvalidArgumentError("unknown complexType '" + type_name +
                                    "'");
      }
      StatusOr<RegexPtr> regex = ParticleListToRegex(it->second->children);
      if (!regex.ok()) return regex.status();
      content_regex_[type_name] = *regex;
    }

    // Pass 3: compile content DFAs now that every type id exists.
    edtd_.content.resize(edtd_.num_types());
    for (int tau = 0; tau < edtd_.num_types(); ++tau) {
      const std::string& type_name = discovered_[tau].second;
      edtd_.content[tau] =
          RegexToDfa(*content_regex_.at(type_name), edtd_.num_types());
    }
    edtd_.CheckWellFormed();
    return edtd_;
  }

 private:
  // The declared type of an element: a `type` attribute or an inline
  // anonymous complex type (which gets a synthetic name).
  StatusOr<std::string> ElementTypeName(const XmlElement& element) {
    const std::string* type = element.FindAttribute("type");
    const XmlElement* inline_type = nullptr;
    for (const XmlElement& child : element.children) {
      if (child.name == "xs:complexType") {
        if (inline_type != nullptr || type != nullptr) {
          return InvalidArgumentError(
              "element has both/multiple type declarations");
        }
        inline_type = &child;
      }
    }
    if (type != nullptr) return *type;
    if (inline_type != nullptr) {
      std::string name = "anon" + std::to_string(anonymous_counter_++);
      complex_types_[name] = inline_type;
      return name;
    }
    return UnimplementedError(
        "element without a complex type (simple types are outside the "
        "subset)");
  }

  int InternType(const std::string& element_name,
                 const std::string& type_name) {
    std::string key = element_name + "$" + type_name;
    int id = edtd_.types.Intern(key);
    if (id == static_cast<int>(edtd_.mu.size())) {
      edtd_.mu.push_back(edtd_.sigma.Intern(element_name));
      discovered_.emplace_back(element_name, type_name);
    }
    return id;
  }

  StatusOr<RegexPtr> ParticleListToRegex(
      const std::vector<XmlElement>& particles) {
    std::vector<RegexPtr> parts;
    for (const XmlElement& particle : particles) {
      if (particle.name == "xs:annotation") continue;
      StatusOr<RegexPtr> part = ParticleToRegex(particle);
      if (!part.ok()) return part;
      parts.push_back(*part);
    }
    return Regex::Concat(std::move(parts));
  }

  StatusOr<RegexPtr> ParticleToRegex(const XmlElement& particle) {
    StatusOr<Occurs> occurs = ReadOccurs(particle);
    if (!occurs.ok()) return occurs.status();
    if (particle.name == "xs:sequence") {
      StatusOr<RegexPtr> body = ParticleListToRegex(particle.children);
      if (!body.ok()) return body;
      return ApplyOccurs(*body, *occurs);
    }
    if (particle.name == "xs:choice") {
      if (particle.FindAttribute("stap-empty") != nullptr) {
        return Regex::EmptySet();
      }
      std::vector<RegexPtr> alternatives;
      for (const XmlElement& child : particle.children) {
        if (child.name == "xs:annotation") continue;
        StatusOr<RegexPtr> alternative = ParticleToRegex(child);
        if (!alternative.ok()) return alternative;
        alternatives.push_back(*alternative);
      }
      return ApplyOccurs(Regex::Union(std::move(alternatives)), *occurs);
    }
    if (particle.name == "xs:element") {
      const std::string* name = particle.FindAttribute("name");
      if (name == nullptr) {
        return UnimplementedError(
            "xs:element without a name (element refs are outside the "
            "subset)");
      }
      StatusOr<std::string> type = ElementTypeName(particle);
      if (!type.ok()) return type.status();
      return ApplyOccurs(Regex::Symbol(InternType(*name, *type)), *occurs);
    }
    return UnimplementedError("unsupported particle <" + particle.name + ">");
  }

  Edtd edtd_;
  std::map<std::string, const XmlElement*> complex_types_;
  std::map<std::string, RegexPtr> content_regex_;
  // Type id -> (element name, type name), in id order.
  std::vector<std::pair<std::string, std::string>> discovered_;
  int anonymous_counter_ = 0;
};

}  // namespace

std::string ExportXsd(const DfaXsd& xsd, const XsdExportOptions& options) {
  xsd.CheckWellFormed();
  XmlElement schema;
  schema.name = "xs:schema";
  schema.attributes.push_back(
      {"xmlns:xs", "http://www.w3.org/2001/XMLSchema"});

  for (int a : xsd.start_symbols) {
    int state = xsd.automaton.Next(xsd.automaton.initial(), a);
    if (state == kNoState) continue;
    XmlElement global;
    global.name = "xs:element";
    global.attributes.push_back({"name", xsd.sigma.Name(a)});
    global.attributes.push_back({"type", TypeNameOfState(xsd, state)});
    schema.children.push_back(std::move(global));
  }
  for (int q = 1; q < xsd.automaton.num_states(); ++q) {
    XmlElement complex_type;
    complex_type.name = "xs:complexType";
    complex_type.attributes.push_back({"name", TypeNameOfState(xsd, q)});
    RegexPtr regex;
    if (!IsOneUnambiguousLanguage(xsd.content[q])) {
      // Section 5: no best deterministic expression may exist; the model
      // violates UPA. Either approximate it away (upper approximation of
      // the content language) or flag it for downstream tooling.
      if (options.repair_upa) {
        regex = ApproximateDre(xsd.content[q]);
        complex_type.attributes.push_back({"stap-upa", "approximated"});
      } else {
        complex_type.attributes.push_back({"stap-upa", "unsatisfiable"});
      }
    }
    if (regex == nullptr) regex = DfaToRegex(xsd.content[q]);
    complex_type.children.push_back(ParticleFromRegex(xsd, q, *regex));
    schema.children.push_back(std::move(complex_type));
  }
  return XmlElementToString(schema);
}

StatusOr<Edtd> ImportXsd(std::string_view xml) { return Importer().Run(xml); }

}  // namespace stap
