#include "stap/schema/xsd_io.h"

#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "stap/base/check.h"
#include "stap/base/string_util.h"
#include "stap/regex/bkw.h"
#include "stap/regex/dre_approx.h"
#include "stap/regex/from_dfa.h"
#include "stap/regex/glushkov.h"
#include "stap/tree/xml.h"

namespace stap {

namespace {

constexpr char kXsdNamespace[] = "http://www.w3.org/2001/XMLSchema";

// Splits "prefix:local" (no prefix → empty prefix).
void SplitQName(std::string_view name, std::string_view* prefix,
                std::string_view* local) {
  size_t colon = name.find(':');
  if (colon == std::string_view::npos) {
    *prefix = std::string_view();
    *local = name;
  } else {
    *prefix = name.substr(0, colon);
    *local = name.substr(colon + 1);
  }
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

std::string TypeNameOfState(const DfaXsd& xsd, int state) {
  return "t" + std::to_string(state) + "_" +
         xsd.sigma.Name(xsd.state_label[state]);
}

// Attaches occurrence bounds to `particle`. Any particle may carry them
// directly, so wrapping in an extra <xs:sequence> is only needed when the
// particle already has bounds of its own (nested repetitions) or special
// semantics (the stap-empty choice, whose import ignores occurs).
XmlElement WithOccurs(XmlElement particle, std::string min, std::string max) {
  if (particle.FindAttribute("minOccurs") != nullptr ||
      particle.FindAttribute("maxOccurs") != nullptr ||
      particle.FindAttribute("stap-empty") != nullptr) {
    XmlElement wrapper;
    wrapper.name = "xs:sequence";
    wrapper.attributes.push_back({"minOccurs", std::move(min)});
    wrapper.attributes.push_back({"maxOccurs", std::move(max)});
    wrapper.children.push_back(std::move(particle));
    return wrapper;
  }
  particle.attributes.push_back({"minOccurs", std::move(min)});
  particle.attributes.push_back({"maxOccurs", std::move(max)});
  return particle;
}

XmlElement ParticleFromRegex(const DfaXsd& xsd, int state,
                             const Regex& regex) {
  switch (regex.kind()) {
    case RegexKind::kEmptySet: {
      // Unsatisfiable content; an empty choice (flagged, since W3C XSD
      // has no direct equivalent). Reduced schemas never produce this.
      XmlElement choice;
      choice.name = "xs:choice";
      choice.attributes.push_back({"stap-empty", "true"});
      return choice;
    }
    case RegexKind::kEpsilon: {
      XmlElement sequence;
      sequence.name = "xs:sequence";
      return sequence;
    }
    case RegexKind::kSymbol: {
      int symbol = regex.symbol();
      int child_state = xsd.automaton.Next(state, symbol);
      STAP_CHECK(child_state != kNoState);  // content is trim
      XmlElement element;
      element.name = "xs:element";
      element.attributes.push_back({"name", xsd.sigma.Name(symbol)});
      element.attributes.push_back({"type", TypeNameOfState(xsd, child_state)});
      return element;
    }
    case RegexKind::kConcat: {
      XmlElement sequence;
      sequence.name = "xs:sequence";
      for (const RegexPtr& child : regex.children()) {
        sequence.children.push_back(ParticleFromRegex(xsd, state, *child));
      }
      return sequence;
    }
    case RegexKind::kUnion: {
      XmlElement choice;
      choice.name = "xs:choice";
      for (const RegexPtr& child : regex.children()) {
        choice.children.push_back(ParticleFromRegex(xsd, state, *child));
      }
      return choice;
    }
    case RegexKind::kStar:
      return WithOccurs(
          ParticleFromRegex(xsd, state, *regex.children()[0]), "0",
          "unbounded");
    case RegexKind::kPlus:
      return WithOccurs(
          ParticleFromRegex(xsd, state, *regex.children()[0]), "1",
          "unbounded");
    case RegexKind::kOptional:
      return WithOccurs(ParticleFromRegex(xsd, state, *regex.children()[0]),
                        "0", "1");
    case RegexKind::kRepeat:
      return WithOccurs(ParticleFromRegex(xsd, state, *regex.children()[0]),
                        std::to_string(regex.repeat_min()),
                        regex.repeat_max() == Regex::kUnboundedRepeat
                            ? "unbounded"
                            : std::to_string(regex.repeat_max()));
  }
  return XmlElement{};
}

// ParticleFromRegex dereferences δ(state, a) for every symbol the regex
// mentions, which only works when each has a live transition — true for
// DfaToRegex output (built from the trimmed content DFA) but a
// precondition to verify before trusting content_source provenance.
bool SymbolsHaveTransitions(const DfaXsd& xsd, int state, const Regex& regex) {
  if (regex.kind() == RegexKind::kSymbol) {
    return xsd.automaton.Next(state, regex.symbol()) != kNoState;
  }
  for (const RegexPtr& child : regex.children()) {
    if (!SymbolsHaveTransitions(xsd, state, *child)) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Import
// ---------------------------------------------------------------------------

struct Occurs {
  int64_t min = 1;
  int64_t max = 1;  // kUnboundedOccurs for maxOccurs="unbounded"
  bool explicit_min = false;

  static constexpr int64_t kUnbounded = -1;
};

// Overflow-checked decimal occurrence value; bounds above
// Regex::kMaxRepeatBound are rejected rather than wrapped.
StatusOr<int64_t> ParseOccursValue(const std::string& value,
                                   const char* attribute) {
  auto error = [&]() {
    return InvalidArgumentError(
        std::string(attribute) + "='" + value +
        "' is not an integer in 0.." +
        std::to_string(Regex::kMaxRepeatBound));
  };
  if (value.empty()) return error();
  int64_t result = 0;
  for (char c : value) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return error();
    result = result * 10 + (c - '0');
    if (result > Regex::kMaxRepeatBound) return error();
  }
  return result;
}

StatusOr<Occurs> ReadOccurs(const XmlElement& element) {
  Occurs occurs;
  if (const std::string* value = element.FindAttribute("minOccurs")) {
    StatusOr<int64_t> min = ParseOccursValue(*value, "minOccurs");
    if (!min.ok()) return min.status();
    occurs.min = *min;
    occurs.explicit_min = true;
  }
  if (const std::string* value = element.FindAttribute("maxOccurs")) {
    if (*value == "unbounded") {
      occurs.max = Occurs::kUnbounded;
    } else {
      StatusOr<int64_t> max = ParseOccursValue(*value, "maxOccurs");
      if (!max.ok()) return max.status();
      occurs.max = *max;
    }
  }
  if (occurs.max != Occurs::kUnbounded && occurs.min > occurs.max) {
    // maxOccurs="0" with the *default* minOccurs of 1 is the documented
    // drop-the-particle idiom, not a contradiction; an explicit
    // minOccurs > maxOccurs is.
    if (occurs.max != 0 || occurs.explicit_min) {
      return InvalidArgumentError(
          "minOccurs=" + std::to_string(occurs.min) + " exceeds maxOccurs=" +
          std::to_string(occurs.max));
    }
  }
  return occurs;
}

RegexPtr ApplyOccurs(RegexPtr regex, const Occurs& occurs) {
  if (occurs.max == 0) return Regex::Epsilon();
  return Regex::Repeat(std::move(regex), static_cast<int>(occurs.min),
                       occurs.max == Occurs::kUnbounded
                           ? Regex::kUnboundedRepeat
                           : static_cast<int>(occurs.max));
}

class Importer {
 public:
  explicit Importer(Budget* budget) : budget_(budget) {}

  StatusOr<Edtd> Run(std::string_view xml) {
    StatusOr<XmlElement> document = ParseXmlDocument(xml);
    if (!document.ok()) return document.status();
    STAP_RETURN_IF_ERROR(ResolveNamespaces(*document));

    // Pass 1: collect named complex types and global elements.
    std::vector<std::pair<std::string, std::string>> globals;  // name, type
    for (const XmlElement& child : document->children) {
      if (IsXsd(child, "complexType")) {
        const std::string* name = child.FindAttribute("name");
        if (name == nullptr) {
          return InvalidArgumentError(
              "top-level xs:complexType must be named");
        }
        if (!complex_types_.emplace(*name, &child).second) {
          return InvalidArgumentError("duplicate top-level complexType '" +
                                      *name + "'");
        }
      } else if (IsXsd(child, "element")) {
        const std::string* name = child.FindAttribute("name");
        if (name == nullptr) {
          return InvalidArgumentError("global xs:element must be named");
        }
        StatusOr<std::string> type = ElementTypeName(child);
        if (!type.ok()) return type.status();
        globals.emplace_back(*name, *type);
      } else if (IsXsd(child, "annotation")) {
        continue;
      } else {
        return UnimplementedError("unsupported top-level element <" +
                                  child.name + ">");
      }
    }

    // Pass 2: discover all (element name, type name) pairings and compile
    // their content expressions. The worklist grows as particles mention
    // new pairings.
    for (const auto& [element_name, type_name] : globals) {
      int type_id = InternType(element_name, type_name);
      StateSetInsert(edtd_.start_types, type_id);
    }
    for (size_t done = 0; done < discovered_.size(); ++done) {
      std::string type_name = discovered_[done].second;
      if (content_regex_.count(type_name) > 0) continue;
      auto it = complex_types_.find(type_name);
      if (it == complex_types_.end()) {
        return InvalidArgumentError("unknown complexType '" + type_name +
                                    "'");
      }
      StatusOr<RegexPtr> regex = ParticleListToRegex(it->second->children);
      if (!regex.ok()) return regex.status();
      content_regex_[type_name] = *regex;
    }

    // Pass 3: compile content DFAs now that every type id exists. Counted
    // repetition expands here, under the budget.
    edtd_.content.resize(edtd_.num_types());
    for (int tau = 0; tau < edtd_.num_types(); ++tau) {
      const std::string& type_name = discovered_[tau].second;
      const RegexPtr& source = content_regex_.at(type_name);
      StatusOr<Dfa> dfa = RegexToDfa(*source, edtd_.num_types(), budget_);
      if (!dfa.ok()) return dfa.status();
      edtd_.content[tau] = *std::move(dfa);
      edtd_.content_source.push_back(source);
    }
    edtd_.CheckWellFormed();
    return edtd_;
  }

 private:
  // Determines which name prefixes denote the XSD namespace, from the
  // root's xmlns declarations. A root prefix that is declared but bound
  // elsewhere is an error; an undeclared root prefix is accepted by
  // convention (bare <schema> / <xs:schema> without boilerplate).
  Status ResolveNamespaces(const XmlElement& root) {
    std::string_view root_prefix;
    std::string_view root_local;
    SplitQName(root.name, &root_prefix, &root_local);
    if (root_local != "schema") {
      return InvalidArgumentError("root element must be an XSD <schema>, got <" +
                                  root.name + ">");
    }
    const std::string* root_binding = nullptr;
    for (const XmlAttribute& attribute : root.attributes) {
      std::string_view bound_prefix;
      if (attribute.name == "xmlns") {
        bound_prefix = std::string_view();
      } else if (StartsWith(attribute.name, "xmlns:")) {
        bound_prefix = std::string_view(attribute.name).substr(6);
      } else {
        continue;
      }
      if (attribute.value == kXsdNamespace) {
        xsd_prefixes_.insert(std::string(bound_prefix));
      }
      if (bound_prefix == root_prefix) root_binding = &attribute.value;
    }
    if (root_binding != nullptr && *root_binding != kXsdNamespace) {
      return InvalidArgumentError("root <" + root.name +
                                  "> is bound to namespace '" + *root_binding +
                                  "', not " + kXsdNamespace);
    }
    if (root_binding == nullptr) {
      xsd_prefixes_.insert(std::string(root_prefix));
    }
    return Status();
  }

  // True if `element` is the XSD element with the given local name, under
  // any prefix resolved to the XSD namespace.
  bool IsXsd(const XmlElement& element, std::string_view local) const {
    std::string_view prefix;
    std::string_view element_local;
    SplitQName(element.name, &prefix, &element_local);
    return element_local == local &&
           xsd_prefixes_.count(std::string(prefix)) > 0;
  }

  // The declared type of an element: a `type` attribute or an inline
  // anonymous complex type (which gets a synthetic name).
  StatusOr<std::string> ElementTypeName(const XmlElement& element) {
    const std::string* type = element.FindAttribute("type");
    const XmlElement* inline_type = nullptr;
    for (const XmlElement& child : element.children) {
      if (IsXsd(child, "complexType")) {
        if (inline_type != nullptr || type != nullptr) {
          return InvalidArgumentError(
              "element has both/multiple type declarations");
        }
        inline_type = &child;
      }
    }
    if (type != nullptr) return *type;
    if (inline_type != nullptr) {
      std::string name;
      do {
        name = "anon" + std::to_string(anonymous_counter_++);
      } while (complex_types_.count(name) > 0);
      complex_types_[name] = inline_type;
      return name;
    }
    return UnimplementedError(
        "element without a complex type (simple types are outside the "
        "subset)");
  }

  int InternType(const std::string& element_name,
                 const std::string& type_name) {
    std::string key = element_name + "$" + type_name;
    int id = edtd_.types.Intern(key);
    if (id == static_cast<int>(edtd_.mu.size())) {
      edtd_.mu.push_back(edtd_.sigma.Intern(element_name));
      discovered_.emplace_back(element_name, type_name);
    }
    return id;
  }

  StatusOr<RegexPtr> ParticleListToRegex(
      const std::vector<XmlElement>& particles) {
    std::vector<RegexPtr> parts;
    for (const XmlElement& particle : particles) {
      if (IsXsd(particle, "annotation")) continue;
      StatusOr<RegexPtr> part = ParticleToRegex(particle);
      if (!part.ok()) return part;
      parts.push_back(*part);
    }
    return Regex::Concat(std::move(parts));
  }

  StatusOr<RegexPtr> ParticleToRegex(const XmlElement& particle) {
    StatusOr<Occurs> occurs = ReadOccurs(particle);
    if (!occurs.ok()) return occurs.status();
    if (occurs->max == 0 &&
        (IsXsd(particle, "sequence") || IsXsd(particle, "choice") ||
         IsXsd(particle, "element"))) {
      // maxOccurs="0": the particle is dropped wholesale — its body is
      // not walked, so types mentioned only here are never interned.
      return Regex::Epsilon();
    }
    if (IsXsd(particle, "sequence")) {
      StatusOr<RegexPtr> body = ParticleListToRegex(particle.children);
      if (!body.ok()) return body;
      return ApplyOccurs(*body, *occurs);
    }
    if (IsXsd(particle, "choice")) {
      if (particle.FindAttribute("stap-empty") != nullptr) {
        return Regex::EmptySet();
      }
      std::vector<RegexPtr> alternatives;
      for (const XmlElement& child : particle.children) {
        if (IsXsd(child, "annotation")) continue;
        StatusOr<RegexPtr> alternative = ParticleToRegex(child);
        if (!alternative.ok()) return alternative;
        alternatives.push_back(*alternative);
      }
      return ApplyOccurs(Regex::Union(std::move(alternatives)), *occurs);
    }
    if (IsXsd(particle, "element")) {
      const std::string* name = particle.FindAttribute("name");
      if (name == nullptr) {
        return UnimplementedError(
            "xs:element without a name (element refs are outside the "
            "subset)");
      }
      StatusOr<std::string> type = ElementTypeName(particle);
      if (!type.ok()) return type.status();
      return ApplyOccurs(Regex::Symbol(InternType(*name, *type)), *occurs);
    }
    return UnimplementedError("unsupported particle <" + particle.name + ">");
  }

  Budget* budget_;
  Edtd edtd_;
  std::set<std::string> xsd_prefixes_;
  std::map<std::string, const XmlElement*> complex_types_;
  std::map<std::string, RegexPtr> content_regex_;
  // Type id -> (element name, type name), in id order.
  std::vector<std::pair<std::string, std::string>> discovered_;
  int anonymous_counter_ = 0;
};

}  // namespace

std::string ExportXsd(const DfaXsd& xsd, const XsdExportOptions& options) {
  xsd.CheckWellFormed();
  const int init = xsd.automaton.initial();
  XmlElement schema;
  schema.name = "xs:schema";
  schema.attributes.push_back(
      {"xmlns:xs", "http://www.w3.org/2001/XMLSchema"});

  for (int a : xsd.start_symbols) {
    int state = xsd.automaton.Next(init, a);
    if (state == kNoState) continue;
    XmlElement global;
    global.name = "xs:element";
    global.attributes.push_back({"name", xsd.sigma.Name(a)});
    global.attributes.push_back({"type", TypeNameOfState(xsd, state)});
    schema.children.push_back(std::move(global));
  }
  for (int q = 0; q < xsd.automaton.num_states(); ++q) {
    if (q == init) continue;  // q_init carries no content model
    XmlElement complex_type;
    complex_type.name = "xs:complexType";
    complex_type.attributes.push_back({"name", TypeNameOfState(xsd, q)});
    RegexPtr regex;
    if (!IsOneUnambiguousLanguage(xsd.content[q])) {
      // Section 5: no best deterministic expression may exist; the model
      // violates UPA. Either approximate it away (upper approximation of
      // the content language) or flag it for downstream tooling.
      if (options.repair_upa) {
        regex = ApproximateDre(xsd.content[q]);
        complex_type.attributes.push_back({"stap-upa", "approximated"});
      } else {
        complex_type.attributes.push_back({"stap-upa", "unsatisfiable"});
      }
    }
    if (regex == nullptr && q < static_cast<int>(xsd.content_source.size()) &&
        xsd.content_source[q] != nullptr &&
        xsd.content_source[q]->ContainsRepeat() &&
        SymbolsHaveTransitions(xsd, q, *xsd.content_source[q])) {
      // Counted provenance: emit the source expression so numeric bounds
      // survive instead of being exploded by state elimination.
      regex = xsd.content_source[q];
    }
    if (regex == nullptr) regex = DfaToRegex(xsd.content[q]);
    complex_type.children.push_back(ParticleFromRegex(xsd, q, *regex));
    schema.children.push_back(std::move(complex_type));
  }
  return XmlElementToString(schema);
}

StatusOr<Edtd> ImportXsd(std::string_view xml, Budget* budget) {
  return Importer(budget).Run(xml);
}

StatusOr<Edtd> ImportXsd(std::string_view xml) {
  return ImportXsd(xml, nullptr);
}

}  // namespace stap
