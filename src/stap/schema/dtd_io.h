// DTD (Document Type Definition) import and export.
//
// The paper's taxonomy ([21]): DTDs are the *local* tree languages —
// content depends on the element name only. This module reads and writes
// the classical DTD element-declaration syntax so local schemas can enter
// the approximation pipeline:
//
//   <!ELEMENT library (book)*>
//   <!ELEMENT book (title, chapter+)>
//   <!ELEMENT title EMPTY>
//   <!ELEMENT chapter (section | EMPTY)>   -- written (section)? here
//
// Supported content: EMPTY, ANY, and parenthesized particles with
// `,` (sequence), `|` (choice), and `* + ?` suffixes. #PCDATA, mixed
// content, attributes (<!ATTLIST>), and entities are outside the tree
// model and rejected.
#ifndef STAP_SCHEMA_DTD_IO_H_
#define STAP_SCHEMA_DTD_IO_H_

#include <string>
#include <string_view>

#include "stap/base/status.h"
#include "stap/schema/dtd.h"

namespace stap {

// Parses element declarations; the first declared element becomes the
// start symbol (pass `root` to override).
StatusOr<Dtd> ParseDtd(std::string_view input, std::string_view root = "");

// Renders the DTD as element declarations (content models are converted
// to expressions by state elimination).
std::string DtdToString(const Dtd& dtd);

}  // namespace stap

#endif  // STAP_SCHEMA_DTD_IO_H_
