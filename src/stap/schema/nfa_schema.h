// EDTD(NFA): extended DTDs whose content models are NFAs
// (paper, Section 5).
//
// Keeping content models non-deterministic changes the complexity
// landscape: inclusion into a single-type schema rises from PTIME
// (Lemma 3.3, DFA contents) to PSPACE (Lemma 5.1), and complementation of
// content models picks up the subset-construction blow-up. This module
// provides the NFA-content representation, Lemma 5.1's inclusion test
// (content checks via on-the-fly determinization), and the conversion to
// the DFA-content form used everywhere else.
#ifndef STAP_SCHEMA_NFA_SCHEMA_H_
#define STAP_SCHEMA_NFA_SCHEMA_H_

#include <cstdint>
#include <vector>

#include "stap/automata/nfa.h"
#include "stap/base/status.h"
#include "stap/schema/edtd.h"

namespace stap {

struct EdtdNfa {
  Alphabet sigma;
  Alphabet types;
  std::vector<int> mu;           // type -> symbol
  std::vector<int> start_types;  // sorted
  std::vector<Nfa> content;      // content[τ] over the type alphabet

  // Views a DFA-content EDTD as an EDTD(NFA) (for conversions and
  // cross-checks). Inputs should be reduced; the inclusion test below
  // relies on content models being trim.
  static EdtdNfa FromEdtd(const Edtd& edtd);

  int num_types() const { return static_cast<int>(mu.size()); }

  int64_t Size() const;

  bool Accepts(const Tree& tree) const;

  // Converts to DFA content models (worst-case exponential per content
  // model — the Section 5 cost).
  Edtd Determinized() const;
};

// Builds an EDTD(NFA) from the textual schema format (schema/text_format
// syntax) compiling content regexes with the Glushkov construction only —
// no determinization.
StatusOr<EdtdNfa> ParseSchemaNfa(std::string_view text);

// Lemma 5.1: L(d1) ⊆ L(d2) for EDTD(NFA)s with d2 single-type. The pair
// walk is polynomial; each per-pair content inclusion determinizes d2's
// content model on the fly (PSPACE-style).
bool IncludedInSingleTypeNfa(const EdtdNfa& d1, const EdtdNfa& d2);

// Single-type test on the NFA representation (Observation 2.7(3) applies
// unchanged: determinism of the type automaton).
bool IsSingleTypeNfa(const EdtdNfa& edtd);

}  // namespace stap

#endif  // STAP_SCHEMA_NFA_SCHEMA_H_
