#include "stap/schema/edtd.h"

#include <algorithm>
#include <sstream>

#include "stap/base/check.h"

namespace stap {

Edtd Edtd::FromDtd(const Dtd& dtd) {
  Edtd edtd;
  edtd.sigma = dtd.sigma;
  edtd.types = dtd.sigma;  // one type per symbol, same names
  edtd.mu.resize(dtd.num_symbols());
  for (int a = 0; a < dtd.num_symbols(); ++a) edtd.mu[a] = a;
  edtd.start_types = dtd.start_symbols;
  edtd.content = dtd.content;  // type ids coincide with symbol ids
  return edtd;
}

int64_t Edtd::Size() const {
  int64_t total = sigma.size() + num_types() +
                  static_cast<int64_t>(start_types.size());
  for (const Dfa& dfa : content) total += dfa.Size();
  return total;
}

std::vector<int> Edtd::PossibleTypes(const Tree& subtree) const {
  // Bottom-up: types for each child first.
  std::vector<std::vector<int>> child_types;
  child_types.reserve(subtree.children.size());
  for (const Tree& child : subtree.children) {
    child_types.push_back(PossibleTypes(child));
    if (child_types.back().empty()) return {};
  }

  std::vector<int> result;
  for (int tau = 0; tau < num_types(); ++tau) {
    if (mu[tau] != subtree.label) continue;
    // Does content[tau] accept some word w with w_i in child_types[i]?
    const Dfa& dfa = content[tau];
    if (dfa.num_states() == 0) continue;
    StateSet states = {dfa.initial()};
    for (const std::vector<int>& options : child_types) {
      StateSet next;
      for (int q : states) {
        for (int candidate : options) {
          int r = dfa.Next(q, candidate);
          if (r != kNoState) StateSetInsert(next, r);
        }
      }
      states = std::move(next);
      if (states.empty()) break;
    }
    for (int q : states) {
      if (dfa.IsFinal(q)) {
        result.push_back(tau);
        break;
      }
    }
  }
  return result;
}

bool Edtd::Accepts(const Tree& tree) const {
  if (tree.label < 0 || tree.label >= num_symbols()) return false;
  std::vector<int> root_types = PossibleTypes(tree);
  for (int tau : root_types) {
    if (StateSetContains(start_types, tau)) return true;
  }
  return false;
}

std::vector<int> Edtd::OccurringTypes(int tau) const {
  STAP_CHECK(tau >= 0 && tau < num_types());
  Dfa trimmed = content[tau].Trimmed();
  std::vector<bool> occurs(num_types(), false);
  for (int q = 0; q < trimmed.num_states(); ++q) {
    for (int t = 0; t < num_types(); ++t) {
      if (trimmed.Next(q, t) != kNoState) occurs[t] = true;
    }
  }
  std::vector<int> result;
  for (int t = 0; t < num_types(); ++t) {
    if (occurs[t]) result.push_back(t);
  }
  return result;
}

void Edtd::CheckWellFormed() const {
  STAP_CHECK(static_cast<int>(mu.size()) == types.size());
  STAP_CHECK(static_cast<int>(content.size()) == num_types());
  for (int tau = 0; tau < num_types(); ++tau) {
    STAP_CHECK(mu[tau] >= 0 && mu[tau] < num_symbols());
    STAP_CHECK(content[tau].num_symbols() == num_types());
  }
  for (int tau : start_types) {
    STAP_CHECK(tau >= 0 && tau < num_types());
  }
  STAP_CHECK(content_source.empty() ||
             static_cast<int>(content_source.size()) == num_types());
  for (const RegexPtr& source : content_source) {
    if (source != nullptr) STAP_CHECK(source->MaxSymbol() < num_types());
  }
}

std::string Edtd::ToString() const {
  std::ostringstream os;
  os << "EDTD start={";
  for (size_t i = 0; i < start_types.size(); ++i) {
    if (i > 0) os << ",";
    os << types.Name(start_types[i]);
  }
  os << "}\n";
  for (int tau = 0; tau < num_types(); ++tau) {
    os << "  " << types.Name(tau) << " [" << sigma.Name(mu[tau])
       << "] -> DFA(" << content[tau].num_states() << " states)\n";
  }
  return os.str();
}

}  // namespace stap
