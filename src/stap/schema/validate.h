// Validation with diagnostics.
//
// Plain membership tests live on the schema types (Dtd::Accepts,
// Edtd::Accepts, DfaXsd::Accepts); this header adds diagnostic validation
// that reports *where* a document violates an XSD — the node whose child
// string fails its content model — which the examples use to show
// data-integration error behavior.
#ifndef STAP_SCHEMA_VALIDATE_H_
#define STAP_SCHEMA_VALIDATE_H_

#include <string>
#include <vector>

#include "stap/schema/single_type.h"
#include "stap/tree/tree.h"

namespace stap {

struct ValidationResult {
  bool ok = true;
  TreePath violation_path;  // meaningful only when !ok
  std::string message;      // human-readable reason
};

// One-pass top-down validation of `tree` against `xsd`, reporting the
// first (pre-order) violation.
ValidationResult ValidateWithDiagnostics(const DfaXsd& xsd, const Tree& tree);

}  // namespace stap

#endif  // STAP_SCHEMA_VALIDATE_H_
