#include "stap/schema/typing.h"

#include <sstream>

#include "stap/base/check.h"

namespace stap {

namespace {

// Saturating arithmetic for typing counts.
int64_t SatAdd(int64_t a, int64_t b, int64_t cap) {
  return a > cap - b ? cap : a + b;
}

int64_t SatMul(int64_t a, int64_t b, int64_t cap) {
  if (a == 0 || b == 0) return 0;
  if (a > cap / b) return cap;
  return a * b;
}

// Per-node typing counts: counts[tau] = number of typings of `node` whose
// root gets type tau (0 when µ(tau) mismatches or no typing exists).
std::vector<int64_t> TypingCounts(const Edtd& edtd, const Tree& node,
                                  int64_t cap) {
  const int n = edtd.num_types();
  std::vector<std::vector<int64_t>> child_counts;
  child_counts.reserve(node.children.size());
  for (const Tree& child : node.children) {
    child_counts.push_back(TypingCounts(edtd, child, cap));
  }

  std::vector<int64_t> result(n, 0);
  for (int tau = 0; tau < n; ++tau) {
    if (edtd.mu[tau] != node.label) continue;
    const Dfa& dfa = edtd.content[tau];
    if (dfa.num_states() == 0) continue;
    // Weighted path count through the content DFA: weight of symbol t at
    // child position i is child_counts[i][t].
    std::vector<int64_t> weight_in_state(dfa.num_states(), 0);
    weight_in_state[dfa.initial()] = 1;
    for (const std::vector<int64_t>& child : child_counts) {
      std::vector<int64_t> next(dfa.num_states(), 0);
      for (int s = 0; s < dfa.num_states(); ++s) {
        if (weight_in_state[s] == 0) continue;
        for (int t = 0; t < n; ++t) {
          if (child[t] == 0) continue;
          int r = dfa.Next(s, t);
          if (r == kNoState) continue;
          next[r] = SatAdd(next[r],
                           SatMul(weight_in_state[s], child[t], cap), cap);
        }
      }
      weight_in_state = std::move(next);
    }
    int64_t total = 0;
    for (int s = 0; s < dfa.num_states(); ++s) {
      if (dfa.IsFinal(s)) total = SatAdd(total, weight_in_state[s], cap);
    }
    result[tau] = total;
  }
  return result;
}

// Extracts one typing, assuming counts certify existence: assigns `tau`
// to `node` and recurses along a satisfying content word.
void ExtractTyping(const Edtd& edtd, const Tree& node, int tau,
                   const TreePath& path, Typing* out) {
  out->paths.push_back(path);
  out->types.push_back(tau);

  const int n = edtd.num_types();
  std::vector<std::vector<int64_t>> child_counts;
  child_counts.reserve(node.children.size());
  for (const Tree& child : node.children) {
    child_counts.push_back(TypingCounts(edtd, child, int64_t{1} << 40));
  }

  // Choose child types: walk the content DFA keeping only states from
  // which acceptance with the remaining children is possible. reachable
  // sets are computed right-to-left.
  const Dfa& dfa = edtd.content[tau];
  const int k = static_cast<int>(node.children.size());
  // viable[i] = states from which children i..k-1 can be consumed.
  std::vector<std::vector<bool>> viable(
      k + 1, std::vector<bool>(dfa.num_states(), false));
  for (int s = 0; s < dfa.num_states(); ++s) {
    viable[k][s] = dfa.IsFinal(s);
  }
  for (int i = k - 1; i >= 0; --i) {
    for (int s = 0; s < dfa.num_states(); ++s) {
      for (int t = 0; t < n && !viable[i][s]; ++t) {
        if (child_counts[i][t] == 0) continue;
        int r = dfa.Next(s, t);
        if (r != kNoState && viable[i + 1][r]) viable[i][s] = true;
      }
    }
  }
  int state = dfa.initial();
  STAP_CHECK(viable[0][state]);
  for (int i = 0; i < k; ++i) {
    int chosen = -1;
    for (int t = 0; t < n; ++t) {
      if (child_counts[i][t] == 0) continue;
      int r = dfa.Next(state, t);
      if (r != kNoState && viable[i + 1][r]) {
        chosen = t;
        state = r;
        break;
      }
    }
    STAP_CHECK(chosen >= 0);
    TreePath child_path = path;
    child_path.push_back(i);
    ExtractTyping(edtd, node.children[i], chosen, child_path, out);
  }
}

void AssignXsdTypes(const DfaXsd& xsd, const Tree& node, int state,
                    const TreePath& path, Typing* out, bool* ok) {
  if (!*ok) return;
  out->paths.push_back(path);
  out->types.push_back(state - 1);
  Word child_string;
  child_string.reserve(node.children.size());
  for (const Tree& child : node.children) child_string.push_back(child.label);
  if (!xsd.content[state].Accepts(child_string)) {
    *ok = false;
    return;
  }
  for (size_t i = 0; i < node.children.size(); ++i) {
    int child_state = xsd.automaton.Next(state, node.children[i].label);
    if (child_state == kNoState) {
      *ok = false;
      return;
    }
    TreePath child_path = path;
    child_path.push_back(static_cast<int>(i));
    AssignXsdTypes(xsd, node.children[i], child_state, child_path, out, ok);
  }
}

}  // namespace

std::string Typing::ToString(const Edtd& schema, const Tree& tree) const {
  std::ostringstream os;
  for (size_t i = 0; i < paths.size(); ++i) {
    os << schema.sigma.Name(tree.At(paths[i]).label) << "@[";
    for (size_t j = 0; j < paths[i].size(); ++j) {
      if (j > 0) os << ".";
      os << paths[i][j];
    }
    os << "] : " << schema.types.Name(types[i]) << "\n";
  }
  return os.str();
}

std::optional<Typing> AssignTypes(const DfaXsd& xsd, const Tree& tree) {
  if (tree.label < 0 || tree.label >= xsd.sigma.size() ||
      !StateSetContains(xsd.start_symbols, tree.label)) {
    return std::nullopt;
  }
  int state = xsd.automaton.Next(xsd.automaton.initial(), tree.label);
  if (state == kNoState) return std::nullopt;
  Typing typing;
  bool ok = true;
  AssignXsdTypes(xsd, tree, state, {}, &typing, &ok);
  if (!ok) return std::nullopt;
  return typing;
}

std::optional<Typing> AssignTypesEdtd(const Edtd& edtd, const Tree& tree) {
  if (tree.label < 0 || tree.label >= edtd.num_symbols()) return std::nullopt;
  std::vector<int64_t> root_counts =
      TypingCounts(edtd, tree, int64_t{1} << 40);
  for (int tau : edtd.start_types) {
    if (root_counts[tau] > 0) {
      Typing typing;
      ExtractTyping(edtd, tree, tau, {}, &typing);
      return typing;
    }
  }
  return std::nullopt;
}

int64_t CountTypings(const Edtd& edtd, const Tree& tree, int64_t cap) {
  if (tree.label < 0 || tree.label >= edtd.num_symbols()) return 0;
  std::vector<int64_t> root_counts = TypingCounts(edtd, tree, cap);
  int64_t total = 0;
  for (int tau : edtd.start_types) {
    total = SatAdd(total, root_counts[tau], cap);
  }
  return total;
}

}  // namespace stap
