#include "stap/schema/builder.h"

#include "stap/base/check.h"
#include "stap/regex/glushkov.h"
#include "stap/regex/parser.h"

namespace stap {

int SchemaBuilder::AddType(const std::string& type_name,
                           const std::string& label,
                           const std::string& content_regex) {
  int id = types_.Intern(type_name);
  STAP_CHECK(id == static_cast<int>(mu_.size()));  // no duplicate types
  mu_.push_back(sigma_.Intern(label));
  content_sources_.push_back(content_regex);
  return id;
}

void SchemaBuilder::AddStart(const std::string& type_name) {
  start_names_.push_back(type_name);
}

Edtd SchemaBuilder::Build() const {
  Edtd edtd;
  edtd.sigma = sigma_;
  edtd.types = types_;
  edtd.mu = mu_;
  Alphabet resolver = types_;  // non-const copy for the parser API
  for (const std::string& source : content_sources_) {
    StatusOr<RegexPtr> regex =
        ParseRegex(source, &resolver, /*intern_new_symbols=*/false);
    STAP_CHECK_OK(regex.status());
    edtd.content.push_back(RegexToDfa(**regex, types_.size()));
    edtd.content_source.push_back(*regex);
  }
  for (const std::string& name : start_names_) {
    int id = edtd.types.Find(name);
    STAP_CHECK(id != kNoSymbol);
    StateSetInsert(edtd.start_types, id);
  }
  edtd.CheckWellFormed();
  return edtd;
}

}  // namespace stap
