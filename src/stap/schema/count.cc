#include "stap/schema/count.h"

#include <vector>

#include "stap/base/check.h"
#include "stap/count/counter.h"

namespace stap {

double CountDocuments(const DfaXsd& xsd, int max_depth, int max_width) {
  STAP_CHECK(max_depth >= 1);
  STAP_CHECK(max_width >= 0);
  // Delegates to the big-int counting DP (count/counter.h); the double
  // return keeps the original approximate-counting contract for callers
  // that only need magnitudes (diff reports, `stap count`).
  CountBounds bounds;
  bounds.max_depth = max_depth;
  bounds.max_width = max_width;
  StatusOr<std::vector<CountValue>> counts =
      CountXsdByDepth(xsd, bounds, nullptr);
  STAP_CHECK(counts.ok());  // a null budget never exhausts
  return counts->back().ToDouble();
}

}  // namespace stap
