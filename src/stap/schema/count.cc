#include "stap/schema/count.h"

#include <vector>

#include "stap/base/check.h"

namespace stap {

namespace {

// Weighted count of words of length <= max_width in `content`, where each
// symbol a multiplies by weight[a]: the number of distinct child forests
// matching the content model with the given per-label subtree counts.
double CountContent(const Dfa& content, const std::vector<double>& weight,
                    int max_width) {
  if (content.num_states() == 0) return 0.0;
  // paths[s] = weighted count of prefixes of the current length landing
  // in state s.
  std::vector<double> paths(content.num_states(), 0.0);
  paths[content.initial()] = 1.0;
  double total = content.IsFinal(content.initial()) ? 1.0 : 0.0;
  for (int length = 1; length <= max_width; ++length) {
    std::vector<double> next(content.num_states(), 0.0);
    for (int s = 0; s < content.num_states(); ++s) {
      if (paths[s] == 0.0) continue;
      for (int a = 0; a < content.num_symbols(); ++a) {
        int r = content.Next(s, a);
        if (r != kNoState && weight[a] > 0.0) {
          next[r] += paths[s] * weight[a];
        }
      }
    }
    paths = std::move(next);
    for (int s = 0; s < content.num_states(); ++s) {
      if (content.IsFinal(s)) total += paths[s];
    }
  }
  return total;
}

}  // namespace

double CountDocuments(const DfaXsd& xsd, int max_depth, int max_width) {
  STAP_CHECK(max_depth >= 1);
  STAP_CHECK(max_width >= 0);
  const int n = xsd.automaton.num_states();
  const int num_symbols = xsd.sigma.size();

  // count[q] = number of subtrees rooted at state q with depth <= d.
  std::vector<double> count(n, 0.0);
  for (int d = 1; d <= max_depth; ++d) {
    std::vector<double> next(n, 0.0);
    for (int q = 1; q < n; ++q) {
      // Per-label weights: subtrees of the child state, one level less.
      std::vector<double> weight(num_symbols, 0.0);
      for (int a = 0; a < num_symbols; ++a) {
        int child = xsd.automaton.Next(q, a);
        if (child != kNoState) weight[a] = count[child];
      }
      next[q] = CountContent(xsd.content[q], weight, max_width);
    }
    count = std::move(next);
  }

  double total = 0.0;
  for (int a : xsd.start_symbols) {
    int q = xsd.automaton.Next(xsd.automaton.initial(), a);
    if (q != kNoState) total += count[q];
  }
  return total;
}

}  // namespace stap
