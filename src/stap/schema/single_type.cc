#include "stap/schema/single_type.h"

#include <sstream>

#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/base/check.h"
#include "stap/schema/type_automaton.h"

namespace stap {

namespace {

// Explicit-stack pre-order walk; document depth is bounded only by memory,
// not by the call stack.
bool AcceptsAt(const DfaXsd& xsd, const Tree& root, int root_state) {
  struct Frame {
    const Tree* node;
    int state;
    size_t next_child;
  };
  Word child_string;
  auto content_ok = [&](const Tree& node, int state) {
    child_string.clear();
    child_string.reserve(node.children.size());
    for (const Tree& child : node.children) {
      child_string.push_back(child.label);
    }
    return xsd.content[state].Accepts(child_string);
  };
  if (!content_ok(root, root_state)) return false;
  std::vector<Frame> stack;
  stack.push_back(Frame{&root, root_state, 0});
  while (!stack.empty()) {
    Frame& frame = stack.back();
    if (frame.next_child == frame.node->children.size()) {
      stack.pop_back();
      continue;
    }
    const Tree& child = frame.node->children[frame.next_child++];
    int child_state = xsd.automaton.Next(frame.state, child.label);
    if (child_state == kNoState) return false;
    if (!content_ok(child, child_state)) return false;
    stack.push_back(Frame{&child, child_state, 0});
  }
  return true;
}

}  // namespace

int64_t DfaXsd::Size() const {
  int64_t total = sigma.size() + static_cast<int64_t>(start_symbols.size()) +
                  automaton.Size();
  for (size_t q = 0; q < content.size(); ++q) {
    if (static_cast<int>(q) == automaton.initial()) continue;
    total += content[q].Size();
  }
  return total;
}

bool DfaXsd::Accepts(const Tree& tree) const {
  if (tree.label < 0 || tree.label >= sigma.size()) return false;
  if (!StateSetContains(start_symbols, tree.label)) return false;
  int state = automaton.Next(automaton.initial(), tree.label);
  if (state == kNoState) return false;
  return AcceptsAt(*this, tree, state);
}

void DfaXsd::CheckWellFormed() const {
  STAP_CHECK(automaton.num_states() >= 1);
  const int init = automaton.initial();
  STAP_CHECK(init >= 0 && init < automaton.num_states());
  STAP_CHECK(static_cast<int>(state_label.size()) == automaton.num_states());
  STAP_CHECK(static_cast<int>(content.size()) == automaton.num_states());
  STAP_CHECK(state_label[init] == kNoSymbol);
  STAP_CHECK(automaton.num_symbols() == sigma.size());
  for (int q = 0; q < automaton.num_states(); ++q) {
    for (int a = 0; a < sigma.size(); ++a) {
      int r = automaton.Next(q, a);
      if (r != kNoState) {
        STAP_CHECK(r != init);  // q_init has no incoming transitions
        STAP_CHECK(state_label[r] == a);  // state-labeled
      }
    }
    if (q != init) STAP_CHECK(content[q].num_symbols() == sigma.size());
  }
  STAP_CHECK(content_source.empty() ||
             static_cast<int>(content_source.size()) == automaton.num_states());
  for (const RegexPtr& source : content_source) {
    if (source != nullptr) STAP_CHECK(source->MaxSymbol() < sigma.size());
  }
}

std::string DfaXsd::ToString() const {
  std::ostringstream os;
  os << "DfaXsd start={";
  for (size_t i = 0; i < start_symbols.size(); ++i) {
    if (i > 0) os << ",";
    os << sigma.Name(start_symbols[i]);
  }
  os << "} states=" << automaton.num_states() << "\n";
  for (int q = 0; q < automaton.num_states(); ++q) {
    if (q == automaton.initial()) continue;
    os << "  state " << q << " [" << sigma.Name(state_label[q])
       << "] content DFA(" << content[q].num_states() << ")\n";
  }
  return os.str();
}

DfaXsd DfaXsdFromStEdtd(const Edtd& edtd) {
  TypeAutomaton type_automaton = BuildTypeAutomaton(edtd);
  STAP_CHECK(type_automaton.IsDeterministic());

  DfaXsd xsd;
  xsd.sigma = edtd.sigma;
  for (int tau : edtd.start_types) {
    StateSetInsert(xsd.start_symbols, edtd.mu[tau]);
  }

  // The deterministic type automaton becomes the XSD automaton verbatim:
  // state 0 = q_init, state 1 + τ = type τ.
  const Nfa& nfa = type_automaton.nfa;
  Dfa automaton(nfa.num_states(), nfa.num_symbols());
  automaton.SetInitial(0);
  for (int q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.num_symbols(); ++a) {
      const StateSet& next = nfa.Next(q, a);
      STAP_CHECK(next.size() <= 1);
      if (!next.empty()) automaton.SetTransition(q, a, next[0]);
    }
  }
  xsd.automaton = std::move(automaton);
  xsd.state_label = type_automaton.state_label;

  xsd.content.resize(nfa.num_states(), Dfa::EmptyLanguage(edtd.num_symbols()));
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    // μ(d(τ)): the homomorphic image of the content model. Because the
    // schema is single-type, μ is injective on the types occurring in
    // d(τ), so the image stays deterministic; determinize-and-minimize
    // is cheap and also canonicalizes.
    Nfa image = HomomorphicImage(edtd.content[tau].Trimmed(), edtd.mu,
                                 edtd.num_symbols());
    xsd.content[TypeAutomaton::StateOfType(tau)] = MinimizeNfa(image);
  }
  if (!edtd.content_source.empty()) {
    // Substituting μ into the source regex is exactly the homomorphic
    // image at the syntax level, so the provenance invariant carries over.
    xsd.content_source.resize(nfa.num_states());
    for (int tau = 0; tau < edtd.num_types(); ++tau) {
      if (edtd.content_source[tau] == nullptr) continue;
      xsd.content_source[TypeAutomaton::StateOfType(tau)] =
          Regex::Substitute(edtd.content_source[tau], edtd.mu);
    }
  }
  xsd.CheckWellFormed();
  return xsd;
}

Edtd StEdtdFromDfaXsd(const DfaXsd& xsd) {
  xsd.CheckWellFormed();
  const int num_states = xsd.automaton.num_states();
  const int init = xsd.automaton.initial();

  // Types are the non-initial states, numbered in state order. With the
  // usual layout (q_init = 0) this keeps the historical mapping "type of
  // state q is q - 1".
  std::vector<int> type_of_state(num_states, -1);
  std::vector<int> state_of_type;
  state_of_type.reserve(num_states > 0 ? num_states - 1 : 0);
  for (int q = 0; q < num_states; ++q) {
    if (q == init) continue;
    type_of_state[q] = static_cast<int>(state_of_type.size());
    state_of_type.push_back(q);
  }
  const int num_types = static_cast<int>(state_of_type.size());

  Edtd edtd;
  edtd.sigma = xsd.sigma;
  for (int q : state_of_type) {
    edtd.types.Intern(xsd.sigma.Name(xsd.state_label[q]) + "@" +
                      std::to_string(q));
    edtd.mu.push_back(xsd.state_label[q]);
  }

  for (int a : xsd.start_symbols) {
    int q = xsd.automaton.Next(init, a);
    if (q != kNoState) StateSetInsert(edtd.start_types, type_of_state[q]);
  }

  edtd.content.reserve(num_types);
  for (int q : state_of_type) {
    // Lift content[q] from Σ to types: symbol a becomes the unique type
    // reached via δ(q, a) when that transition exists.
    std::vector<int> type_to_symbol(num_types, kNoSymbol);
    for (int tau = 0; tau < num_types; ++tau) {
      int a = xsd.state_label[state_of_type[tau]];
      if (xsd.automaton.Next(q, a) == state_of_type[tau]) {
        type_to_symbol[tau] = a;
      }
    }
    edtd.content.push_back(Minimize(
        InverseHomomorphism(xsd.content[q], type_to_symbol, num_types)));
    if (!xsd.content_source.empty()) {
      // δ(q, ·) is deterministic, so each symbol lifts to at most one
      // type; substituting that map into the source regex picks the
      // unique preimage word-by-word. A source mentioning a symbol with
      // no transition from q substitutes to nullptr (provenance dropped).
      std::vector<int> symbol_to_type(xsd.sigma.size(), kNoSymbol);
      for (int a = 0; a < xsd.sigma.size(); ++a) {
        int next = xsd.automaton.Next(q, a);
        if (next != kNoState) symbol_to_type[a] = type_of_state[next];
      }
      edtd.content_source.push_back(
          xsd.content_source[q] == nullptr
              ? nullptr
              : Regex::Substitute(xsd.content_source[q], symbol_to_type));
    }
  }
  edtd.CheckWellFormed();
  return edtd;
}

}  // namespace stap
