#include "stap/schema/single_type.h"

#include <sstream>

#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/base/check.h"
#include "stap/schema/type_automaton.h"

namespace stap {

namespace {

bool AcceptsAt(const DfaXsd& xsd, const Tree& node, int state) {
  Word child_string;
  child_string.reserve(node.children.size());
  for (const Tree& child : node.children) child_string.push_back(child.label);
  if (!xsd.content[state].Accepts(child_string)) return false;
  for (const Tree& child : node.children) {
    int child_state = xsd.automaton.Next(state, child.label);
    if (child_state == kNoState) return false;
    if (!AcceptsAt(xsd, child, child_state)) return false;
  }
  return true;
}

}  // namespace

int64_t DfaXsd::Size() const {
  int64_t total = sigma.size() + static_cast<int64_t>(start_symbols.size()) +
                  automaton.Size();
  for (size_t q = 1; q < content.size(); ++q) total += content[q].Size();
  return total;
}

bool DfaXsd::Accepts(const Tree& tree) const {
  if (tree.label < 0 || tree.label >= sigma.size()) return false;
  if (!StateSetContains(start_symbols, tree.label)) return false;
  int state = automaton.Next(0, tree.label);
  if (state == kNoState) return false;
  return AcceptsAt(*this, tree, state);
}

void DfaXsd::CheckWellFormed() const {
  STAP_CHECK(automaton.num_states() >= 1);
  STAP_CHECK(automaton.initial() == 0);
  STAP_CHECK(static_cast<int>(state_label.size()) == automaton.num_states());
  STAP_CHECK(static_cast<int>(content.size()) == automaton.num_states());
  STAP_CHECK(state_label[0] == kNoSymbol);
  STAP_CHECK(automaton.num_symbols() == sigma.size());
  for (int q = 0; q < automaton.num_states(); ++q) {
    for (int a = 0; a < sigma.size(); ++a) {
      int r = automaton.Next(q, a);
      if (r != kNoState) {
        STAP_CHECK(r != 0);  // q_init has no incoming transitions
        STAP_CHECK(state_label[r] == a);  // state-labeled
      }
    }
    if (q > 0) STAP_CHECK(content[q].num_symbols() == sigma.size());
  }
}

std::string DfaXsd::ToString() const {
  std::ostringstream os;
  os << "DfaXsd start={";
  for (size_t i = 0; i < start_symbols.size(); ++i) {
    if (i > 0) os << ",";
    os << sigma.Name(start_symbols[i]);
  }
  os << "} states=" << automaton.num_states() << "\n";
  for (int q = 1; q < automaton.num_states(); ++q) {
    os << "  state " << q << " [" << sigma.Name(state_label[q])
       << "] content DFA(" << content[q].num_states() << ")\n";
  }
  return os.str();
}

DfaXsd DfaXsdFromStEdtd(const Edtd& edtd) {
  TypeAutomaton type_automaton = BuildTypeAutomaton(edtd);
  STAP_CHECK(type_automaton.IsDeterministic());

  DfaXsd xsd;
  xsd.sigma = edtd.sigma;
  for (int tau : edtd.start_types) {
    StateSetInsert(xsd.start_symbols, edtd.mu[tau]);
  }

  // The deterministic type automaton becomes the XSD automaton verbatim:
  // state 0 = q_init, state 1 + τ = type τ.
  const Nfa& nfa = type_automaton.nfa;
  Dfa automaton(nfa.num_states(), nfa.num_symbols());
  automaton.SetInitial(0);
  for (int q = 0; q < nfa.num_states(); ++q) {
    for (int a = 0; a < nfa.num_symbols(); ++a) {
      const StateSet& next = nfa.Next(q, a);
      STAP_CHECK(next.size() <= 1);
      if (!next.empty()) automaton.SetTransition(q, a, next[0]);
    }
  }
  xsd.automaton = std::move(automaton);
  xsd.state_label = type_automaton.state_label;

  xsd.content.resize(nfa.num_states(), Dfa::EmptyLanguage(edtd.num_symbols()));
  for (int tau = 0; tau < edtd.num_types(); ++tau) {
    // μ(d(τ)): the homomorphic image of the content model. Because the
    // schema is single-type, μ is injective on the types occurring in
    // d(τ), so the image stays deterministic; determinize-and-minimize
    // is cheap and also canonicalizes.
    Nfa image = HomomorphicImage(edtd.content[tau].Trimmed(), edtd.mu,
                                 edtd.num_symbols());
    xsd.content[TypeAutomaton::StateOfType(tau)] = MinimizeNfa(image);
  }
  xsd.CheckWellFormed();
  return xsd;
}

Edtd StEdtdFromDfaXsd(const DfaXsd& xsd) {
  xsd.CheckWellFormed();
  const int num_states = xsd.automaton.num_states();

  Edtd edtd;
  edtd.sigma = xsd.sigma;
  // Type ids are state ids shifted by one: type of state q is q - 1.
  for (int q = 1; q < num_states; ++q) {
    edtd.types.Intern(xsd.sigma.Name(xsd.state_label[q]) + "@" +
                      std::to_string(q));
    edtd.mu.push_back(xsd.state_label[q]);
  }
  const int num_types = num_states - 1;

  for (int a : xsd.start_symbols) {
    int q = xsd.automaton.Next(0, a);
    if (q != kNoState) StateSetInsert(edtd.start_types, q - 1);
  }

  edtd.content.reserve(num_types);
  for (int q = 1; q < num_states; ++q) {
    // Lift content[q] from Σ to types: symbol a becomes the unique type
    // δ(q, a) - 1 when that transition exists.
    std::vector<int> type_to_symbol(num_types, kNoSymbol);
    for (int tau = 0; tau < num_types; ++tau) {
      int a = xsd.state_label[tau + 1];
      if (xsd.automaton.Next(q, a) == tau + 1) type_to_symbol[tau] = a;
    }
    edtd.content.push_back(Minimize(
        InverseHomomorphism(xsd.content[q], type_to_symbol, num_types)));
  }
  edtd.CheckWellFormed();
  return edtd;
}

}  // namespace stap
