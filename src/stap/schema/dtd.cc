#include "stap/schema/dtd.h"

#include <sstream>

#include "stap/base/check.h"

namespace stap {

namespace {

bool AcceptsSubtree(const Dtd& dtd, const Tree& node) {
  Word child_string;
  child_string.reserve(node.children.size());
  for (const Tree& child : node.children) child_string.push_back(child.label);
  if (!dtd.content[node.label].Accepts(child_string)) return false;
  for (const Tree& child : node.children) {
    if (!AcceptsSubtree(dtd, child)) return false;
  }
  return true;
}

}  // namespace

Dtd Dtd::LeafOnly(const Alphabet& sigma) {
  Dtd dtd;
  dtd.sigma = sigma;
  dtd.content.assign(sigma.size(), Dfa::EpsilonOnly(sigma.size()));
  return dtd;
}

int64_t Dtd::Size() const {
  int64_t total = sigma.size() + static_cast<int64_t>(start_symbols.size());
  for (const Dfa& dfa : content) total += dfa.Size();
  return total;
}

bool Dtd::Accepts(const Tree& tree) const {
  if (tree.label < 0 || tree.label >= num_symbols()) return false;
  if (!StateSetContains(start_symbols, tree.label)) return false;
  return AcceptsSubtree(*this, tree);
}

std::string Dtd::ToString() const {
  std::ostringstream os;
  os << "DTD start={";
  for (size_t i = 0; i < start_symbols.size(); ++i) {
    if (i > 0) os << ",";
    os << sigma.Name(start_symbols[i]);
  }
  os << "}\n";
  for (int a = 0; a < num_symbols(); ++a) {
    os << sigma.Name(a) << " -> DFA(" << content[a].num_states()
       << " states)\n";
  }
  return os.str();
}

}  // namespace stap
