// Deterministic-regular-expression upper approximation of a DFA.
//
// The paper's conclusion: "the present methods for computing upper
// approximations ... followed by a translation of DFAs to deterministic
// regular expressions using the methods of [4] provides an algorithm for
// approximating real-world XSDs." [4] shows a *best* deterministic
// expression need not exist, so the translation is itself an (upper)
// approximation. This module implements a sound chain-expression
// heuristic in that spirit:
//
//   1. order the alphabet by occurrence precedence in L(dfa); symbols
//      that can occur in both orders fall into one group (SCCs of the
//      precedence relation);
//   2. emit one factor per group, in topological order, with the
//      tightest sound quantifier (a, a?, a+, a*, (a|b)+, (a|b)*, ...).
//
// The result is one-unambiguous by construction (groups are disjoint and
// ordered) and its language contains L(dfa); it is exact exactly when
// L(dfa) is itself such a chain expression.
#ifndef STAP_REGEX_DRE_APPROX_H_
#define STAP_REGEX_DRE_APPROX_H_

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/regex/ast.h"

namespace stap {

// A deterministic (one-unambiguous) expression with L(dfa) ⊆ L(result).
RegexPtr ApproximateDre(const Dfa& dfa);

// Schema-guided NFA entry point: determinizes `nfa` — under `context`
// when non-null (automata/determinize.h), dense otherwise — and chains
// the result. The expression is deterministic and contains L(nfa)
// restricted to context-live prefixes; with a null or exact-mode context
// it contains all of L(nfa), like ApproximateDre on the dense DFA.
StatusOr<RegexPtr> ApproximateDreUnderSchema(const Nfa& nfa,
                                             const Nfa* context,
                                             Budget* budget = nullptr);

// True if the approximation is exact (L(result) == L(dfa)).
bool ApproximateDreIsExact(const Dfa& dfa);

}  // namespace stap

#endif  // STAP_REGEX_DRE_APPROX_H_
