// Parser for the textual regular-expression syntax.
//
// Syntax:
//   expr    := term ('|' term)*
//   term    := factor+                      (juxtaposition = concatenation)
//   factor  := atom ('*' | '+' | '?')*
//   atom    := IDENT | '%' | '~' | '(' expr ')'
// where IDENT is [A-Za-z_][A-Za-z0-9_.-]* resolved against an Alphabet,
// '%' is ε and '~' is ∅. Whitespace separates tokens and is otherwise
// ignored.
#ifndef STAP_REGEX_PARSER_H_
#define STAP_REGEX_PARSER_H_

#include <string_view>

#include "stap/automata/alphabet.h"
#include "stap/base/status.h"
#include "stap/regex/ast.h"

namespace stap {

// Parses `input`; unknown symbol names are interned into `alphabet` when
// `intern_new_symbols`, and are an error otherwise.
StatusOr<RegexPtr> ParseRegex(std::string_view input, Alphabet* alphabet,
                              bool intern_new_symbols = true);

}  // namespace stap

#endif  // STAP_REGEX_PARSER_H_
