#include "stap/regex/glushkov.h"

#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/base/check.h"

namespace stap {

namespace {

// Position bookkeeping for the Glushkov construction. Positions are
// numbered from 1; position 0 is the fresh initial state.
struct PositionSets {
  bool nullable = false;
  std::vector<int> first;
  std::vector<int> last;
};

struct Builder {
  std::vector<int> position_symbol;          // 1-based; [0] unused
  std::vector<std::vector<int>> follow;      // 1-based; follow[p]

  int NewPosition(int symbol) {
    position_symbol.push_back(symbol);
    follow.emplace_back();
    return static_cast<int>(position_symbol.size()) - 1;
  }

  void AddFollow(const std::vector<int>& from, const std::vector<int>& to) {
    for (int p : from) {
      for (int q : to) follow[p].push_back(q);
    }
  }

  PositionSets Visit(const Regex& regex) {
    PositionSets result;
    switch (regex.kind()) {
      case RegexKind::kEmptySet:
        break;
      case RegexKind::kEpsilon:
        result.nullable = true;
        break;
      case RegexKind::kSymbol: {
        int p = NewPosition(regex.symbol());
        result.first = {p};
        result.last = {p};
        break;
      }
      case RegexKind::kConcat: {
        result.nullable = true;
        bool first_open = true;  // all children so far nullable
        std::vector<int> pending_last;
        for (const RegexPtr& child : regex.children()) {
          PositionSets sets = Visit(*child);
          AddFollow(pending_last, sets.first);
          if (first_open) {
            result.first.insert(result.first.end(), sets.first.begin(),
                                sets.first.end());
          }
          if (!sets.nullable) {
            first_open = false;
            result.nullable = false;
            pending_last = std::move(sets.last);
          } else {
            pending_last.insert(pending_last.end(), sets.last.begin(),
                                sets.last.end());
          }
        }
        result.last = std::move(pending_last);
        break;
      }
      case RegexKind::kUnion: {
        for (const RegexPtr& child : regex.children()) {
          PositionSets sets = Visit(*child);
          result.nullable = result.nullable || sets.nullable;
          result.first.insert(result.first.end(), sets.first.begin(),
                              sets.first.end());
          result.last.insert(result.last.end(), sets.last.begin(),
                             sets.last.end());
        }
        break;
      }
      case RegexKind::kStar:
      case RegexKind::kPlus:
      case RegexKind::kOptional: {
        PositionSets sets = Visit(*regex.children()[0]);
        if (regex.kind() != RegexKind::kOptional) {
          AddFollow(sets.last, sets.first);
        }
        result.nullable =
            regex.kind() == RegexKind::kPlus ? sets.nullable : true;
        result.first = std::move(sets.first);
        result.last = std::move(sets.last);
        break;
      }
    }
    return result;
  }
};

}  // namespace

Nfa GlushkovAutomaton(const Regex& regex, int num_symbols) {
  Builder builder;
  builder.position_symbol.push_back(kNoSymbol);  // slot for state 0
  builder.follow.emplace_back();
  PositionSets sets = builder.Visit(regex);

  const int num_positions =
      static_cast<int>(builder.position_symbol.size()) - 1;
  Nfa nfa(num_positions + 1, num_symbols);
  nfa.AddInitial(0);
  if (sets.nullable) nfa.SetFinal(0);
  for (int p : sets.last) nfa.SetFinal(p);
  for (int p : sets.first) {
    STAP_CHECK(builder.position_symbol[p] < num_symbols);
    nfa.AddTransition(0, builder.position_symbol[p], p);
  }
  for (int p = 1; p <= num_positions; ++p) {
    for (int q : builder.follow[p]) {
      nfa.AddTransition(p, builder.position_symbol[q], q);
    }
  }
  return nfa;
}

bool IsOneUnambiguous(const Regex& regex, int num_symbols) {
  Nfa glushkov = GlushkovAutomaton(regex, num_symbols);
  for (int q = 0; q < glushkov.num_states(); ++q) {
    for (int a = 0; a < num_symbols; ++a) {
      if (glushkov.Next(q, a).size() > 1) return false;
    }
  }
  return true;
}

Dfa RegexToDfa(const Regex& regex, int num_symbols) {
  return Minimize(Determinize(GlushkovAutomaton(regex, num_symbols)));
}

}  // namespace stap
