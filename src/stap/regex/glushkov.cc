#include "stap/regex/glushkov.h"

#include <utility>
#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/base/check.h"

namespace stap {

namespace {

// Position bookkeeping for the Glushkov construction. Positions are
// numbered from 1; position 0 is the fresh initial state.
struct PositionSets {
  bool nullable = false;
  std::vector<int> first;
  std::vector<int> last;
};

struct Builder {
  std::vector<int> position_symbol;          // 1-based; [0] unused
  std::vector<std::vector<int>> follow;      // 1-based; follow[p]
  Budget* budget = nullptr;
  Status status;  // first budget failure; latches and short-circuits

  int NewPosition(int symbol) {
    if (status.ok()) status = Budget::ChargeStates(budget);
    position_symbol.push_back(symbol);
    follow.emplace_back();
    return static_cast<int>(position_symbol.size()) - 1;
  }

  void AddFollow(const std::vector<int>& from, const std::vector<int>& to) {
    if (status.ok()) {
      status = Budget::ChargeSets(
          budget, static_cast<int64_t>(from.size()) *
                      static_cast<int64_t>(to.size()));
    }
    if (!status.ok()) return;
    for (int p : from) {
      for (int q : to) follow[p].push_back(q);
    }
  }

  PositionSets Visit(const Regex& regex) {
    PositionSets result;
    if (!status.ok()) return result;
    switch (regex.kind()) {
      case RegexKind::kEmptySet:
        break;
      case RegexKind::kEpsilon:
        result.nullable = true;
        break;
      case RegexKind::kSymbol: {
        int p = NewPosition(regex.symbol());
        result.first = {p};
        result.last = {p};
        break;
      }
      case RegexKind::kConcat: {
        result.nullable = true;
        bool first_open = true;  // all children so far nullable
        std::vector<int> pending_last;
        for (const RegexPtr& child : regex.children()) {
          if (!status.ok()) break;
          PositionSets sets = Visit(*child);
          AddFollow(pending_last, sets.first);
          if (first_open) {
            result.first.insert(result.first.end(), sets.first.begin(),
                                sets.first.end());
          }
          if (!sets.nullable) {
            first_open = false;
            result.nullable = false;
            pending_last = std::move(sets.last);
          } else {
            pending_last.insert(pending_last.end(), sets.last.begin(),
                                sets.last.end());
          }
        }
        result.last = std::move(pending_last);
        break;
      }
      case RegexKind::kUnion: {
        for (const RegexPtr& child : regex.children()) {
          if (!status.ok()) break;
          PositionSets sets = Visit(*child);
          result.nullable = result.nullable || sets.nullable;
          result.first.insert(result.first.end(), sets.first.begin(),
                              sets.first.end());
          result.last.insert(result.last.end(), sets.last.begin(),
                             sets.last.end());
        }
        break;
      }
      case RegexKind::kStar:
      case RegexKind::kPlus:
      case RegexKind::kOptional: {
        PositionSets sets = Visit(*regex.children()[0]);
        if (regex.kind() != RegexKind::kOptional) {
          AddFollow(sets.last, sets.first);
        }
        result.nullable =
            regex.kind() == RegexKind::kPlus ? sets.nullable : true;
        result.first = std::move(sets.first);
        result.last = std::move(sets.last);
        break;
      }
      case RegexKind::kRepeat: {
        // Bounded expansion: r{n,m} = r^n·(r?)^{m-n}, r{n,} = r^{n-1}·r+.
        // Each copy mints fresh positions, so the budget charges in
        // NewPosition/AddFollow bound the expansion cooperatively; the
        // loop stops at the first failed charge. Regex::Repeat normalizes
        // degenerate bounds away, so copies >= 1 here.
        const Regex& child = *regex.children()[0];
        const int min = regex.repeat_min();
        const bool unbounded = regex.repeat_max() == Regex::kUnboundedRepeat;
        const int copies = unbounded ? min : regex.repeat_max();
        result.nullable = true;
        bool first_open = true;
        std::vector<int> pending_last;
        for (int i = 0; i < copies; ++i) {
          if (!status.ok()) break;
          PositionSets sets = Visit(child);
          if (unbounded && i == copies - 1) {
            // The final copy behaves as r+: it may iterate.
            AddFollow(sets.last, sets.first);
          }
          AddFollow(pending_last, sets.first);
          if (first_open) {
            result.first.insert(result.first.end(), sets.first.begin(),
                                sets.first.end());
          }
          const bool copy_nullable = sets.nullable || i >= min;
          if (!copy_nullable) {
            first_open = false;
            result.nullable = false;
            pending_last = std::move(sets.last);
          } else {
            pending_last.insert(pending_last.end(), sets.last.begin(),
                                sets.last.end());
          }
        }
        result.last = std::move(pending_last);
        break;
      }
    }
    return result;
  }
};

}  // namespace

StatusOr<Nfa> GlushkovAutomaton(const Regex& regex, int num_symbols,
                                Budget* budget) {
  Builder builder;
  builder.budget = budget;
  builder.position_symbol.push_back(kNoSymbol);  // slot for state 0
  builder.follow.emplace_back();
  PositionSets sets = builder.Visit(regex);
  STAP_RETURN_IF_ERROR(builder.status);

  const int num_positions =
      static_cast<int>(builder.position_symbol.size()) - 1;
  Nfa nfa(num_positions + 1, num_symbols);
  nfa.AddInitial(0);
  if (sets.nullable) nfa.SetFinal(0);
  for (int p : sets.last) nfa.SetFinal(p);
  for (int p : sets.first) {
    STAP_CHECK(builder.position_symbol[p] < num_symbols);
    nfa.AddTransition(0, builder.position_symbol[p], p);
  }
  for (int p = 1; p <= num_positions; ++p) {
    for (int q : builder.follow[p]) {
      nfa.AddTransition(p, builder.position_symbol[q], q);
    }
  }
  return nfa;
}

Nfa GlushkovAutomaton(const Regex& regex, int num_symbols) {
  StatusOr<Nfa> nfa = GlushkovAutomaton(regex, num_symbols, nullptr);
  STAP_CHECK(nfa.ok());
  return *std::move(nfa);
}

bool IsOneUnambiguous(const Regex& regex, int num_symbols) {
  Nfa glushkov = GlushkovAutomaton(regex, num_symbols);
  for (int q = 0; q < glushkov.num_states(); ++q) {
    for (int a = 0; a < num_symbols; ++a) {
      if (glushkov.Next(q, a).size() > 1) return false;
    }
  }
  return true;
}

StatusOr<Dfa> RegexToDfa(const Regex& regex, int num_symbols, Budget* budget) {
  StatusOr<Nfa> glushkov = GlushkovAutomaton(regex, num_symbols, budget);
  if (!glushkov.ok()) return glushkov.status();
  StatusOr<Dfa> dfa = Determinize(*glushkov, budget);
  if (!dfa.ok()) return dfa;
  return Minimize(*dfa, budget);
}

Dfa RegexToDfa(const Regex& regex, int num_symbols) {
  StatusOr<Dfa> dfa = RegexToDfa(regex, num_symbols, nullptr);
  STAP_CHECK(dfa.ok());
  return *std::move(dfa);
}

}  // namespace stap
