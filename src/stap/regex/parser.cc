#include "stap/regex/parser.h"

#include <cctype>
#include <string>
#include <vector>

namespace stap {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  // '@' and '$' appear in machine-generated type names ("label@state",
  // "element$ComplexType").
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' ||
         c == '-' || c == '@' || c == '$';
}

class Parser {
 public:
  Parser(std::string_view input, Alphabet* alphabet, bool intern_new_symbols)
      : input_(input),
        alphabet_(alphabet),
        intern_new_symbols_(intern_new_symbols) {}

  StatusOr<RegexPtr> Parse() {
    StatusOr<RegexPtr> expr = ParseExpr();
    if (!expr.ok()) return expr;
    SkipSpace();
    if (pos_ != input_.size()) {
      return InvalidArgumentError("trailing characters in regex at offset " +
                                  std::to_string(pos_) + ": '" +
                                  std::string(input_.substr(pos_)) + "'");
    }
    return expr;
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= input_.size()) return false;
    char c = input_[pos_];
    return IsIdentStart(c) || c == '%' || c == '~' || c == '(';
  }

  StatusOr<RegexPtr> ParseExpr() {
    std::vector<RegexPtr> terms;
    StatusOr<RegexPtr> first = ParseTerm();
    if (!first.ok()) return first;
    terms.push_back(*first);
    while (true) {
      SkipSpace();
      if (pos_ < input_.size() && input_[pos_] == '|') {
        ++pos_;
        StatusOr<RegexPtr> term = ParseTerm();
        if (!term.ok()) return term;
        terms.push_back(*term);
      } else {
        break;
      }
    }
    return Regex::Union(std::move(terms));
  }

  StatusOr<RegexPtr> ParseTerm() {
    std::vector<RegexPtr> factors;
    if (!AtAtomStart()) {
      return InvalidArgumentError("expected regex atom at offset " +
                                  std::to_string(pos_));
    }
    while (AtAtomStart()) {
      StatusOr<RegexPtr> factor = ParseFactor();
      if (!factor.ok()) return factor;
      factors.push_back(*factor);
    }
    return Regex::Concat(std::move(factors));
  }

  StatusOr<RegexPtr> ParseFactor() {
    StatusOr<RegexPtr> atom = ParseAtom();
    if (!atom.ok()) return atom;
    RegexPtr result = *atom;
    while (pos_ < input_.size()) {
      char c = input_[pos_];
      if (c == '*') {
        result = Regex::Star(std::move(result));
        ++pos_;
      } else if (c == '+') {
        result = Regex::Plus(std::move(result));
        ++pos_;
      } else if (c == '?') {
        result = Regex::Optional(std::move(result));
        ++pos_;
      } else if (c == '{') {
        StatusOr<RegexPtr> repeated = ParseRepeatBounds(std::move(result));
        if (!repeated.ok()) return repeated;
        result = *repeated;
      } else {
        break;
      }
    }
    return result;
  }

  // Parses "{n}", "{n,}" or "{n,m}" starting at the '{' and applies it to
  // `operand`. Bounds are overflow-checked against Regex::kMaxRepeatBound.
  StatusOr<RegexPtr> ParseRepeatBounds(RegexPtr operand) {
    ++pos_;  // consume '{'
    int min = 0;
    int max = 0;
    if (!ParseBound(&min)) {
      return InvalidArgumentError(
          "expected a repetition bound in 0..1000000000 after '{' at offset " +
          std::to_string(pos_));
    }
    if (pos_ < input_.size() && input_[pos_] == ',') {
      ++pos_;
      if (pos_ < input_.size() && input_[pos_] == '}') {
        max = Regex::kUnboundedRepeat;  // {n,}
      } else if (!ParseBound(&max)) {
        return InvalidArgumentError(
            "expected a repetition bound in 0..1000000000 after ',' at offset " +
            std::to_string(pos_));
      }
    } else {
      max = min;  // {n}
    }
    if (pos_ >= input_.size() || input_[pos_] != '}') {
      return InvalidArgumentError("missing '}' in repetition at offset " +
                                  std::to_string(pos_));
    }
    ++pos_;
    if (max != Regex::kUnboundedRepeat && min > max) {
      return InvalidArgumentError(
          "invalid repetition {" + std::to_string(min) + "," +
          std::to_string(max) + "}: minimum exceeds maximum");
    }
    return Regex::Repeat(std::move(operand), min, max);
  }

  // Overflow-checked decimal bound; false if no digit is present. Values
  // above Regex::kMaxRepeatBound fail rather than wrapping.
  bool ParseBound(int* out) {
    size_t start = pos_;
    int64_t value = 0;
    while (pos_ < input_.size() &&
           std::isdigit(static_cast<unsigned char>(input_[pos_]))) {
      value = value * 10 + (input_[pos_] - '0');
      if (value > Regex::kMaxRepeatBound) return false;
      ++pos_;
    }
    if (pos_ == start) return false;
    *out = static_cast<int>(value);
    return true;
  }

  StatusOr<RegexPtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= input_.size()) {
      return InvalidArgumentError("unexpected end of regex");
    }
    char c = input_[pos_];
    if (c == '%') {
      ++pos_;
      return Regex::Epsilon();
    }
    if (c == '~') {
      ++pos_;
      return Regex::EmptySet();
    }
    if (c == '(') {
      ++pos_;
      StatusOr<RegexPtr> expr = ParseExpr();
      if (!expr.ok()) return expr;
      SkipSpace();
      if (pos_ >= input_.size() || input_[pos_] != ')') {
        return InvalidArgumentError("missing ')' at offset " +
                                    std::to_string(pos_));
      }
      ++pos_;
      return expr;
    }
    if (IsIdentStart(c)) {
      size_t start = pos_;
      while (pos_ < input_.size() && IsIdentChar(input_[pos_])) ++pos_;
      std::string_view name = input_.substr(start, pos_ - start);
      int symbol = intern_new_symbols_ ? alphabet_->Intern(name)
                                       : alphabet_->Find(name);
      if (symbol == kNoSymbol) {
        return InvalidArgumentError("unknown symbol '" + std::string(name) +
                                    "' in regex");
      }
      return Regex::Symbol(symbol);
    }
    return InvalidArgumentError(std::string("unexpected character '") + c +
                                "' in regex at offset " + std::to_string(pos_));
  }

  std::string_view input_;
  Alphabet* alphabet_;
  bool intern_new_symbols_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<RegexPtr> ParseRegex(std::string_view input, Alphabet* alphabet,
                              bool intern_new_symbols) {
  return Parser(input, alphabet, intern_new_symbols).Parse();
}

}  // namespace stap
