// Glushkov (position) automaton construction.
//
// The Glushkov automaton of an expression with m symbol occurrences has
// m + 1 states, is ε-free, and is *state-labeled*: every transition into a
// position state carries that position's symbol (the property the paper
// relies on in Section 2.1). An expression is one-unambiguous
// ("deterministic" in XML Schema terms, enforcing UPA) exactly when its
// Glushkov automaton is deterministic.
#ifndef STAP_REGEX_GLUSHKOV_H_
#define STAP_REGEX_GLUSHKOV_H_

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/regex/ast.h"

namespace stap {

// Builds the Glushkov automaton; `num_symbols` is the alphabet size the
// automaton should range over (symbols in the regex must be < num_symbols).
Nfa GlushkovAutomaton(const Regex& regex, int num_symbols);

// True if the Glushkov automaton of `regex` is deterministic, i.e. the
// expression is one-unambiguous / satisfies UPA.
bool IsOneUnambiguous(const Regex& regex, int num_symbols);

// Compiles to the canonical minimal DFA.
Dfa RegexToDfa(const Regex& regex, int num_symbols);

}  // namespace stap

#endif  // STAP_REGEX_GLUSHKOV_H_
