// Glushkov (position) automaton construction.
//
// The Glushkov automaton of an expression with m symbol occurrences has
// m + 1 states, is ε-free, and is *state-labeled*: every transition into a
// position state carries that position's symbol (the property the paper
// relies on in Section 2.1). An expression is one-unambiguous
// ("deterministic" in XML Schema terms, enforcing UPA) exactly when its
// Glushkov automaton is deterministic.
//
// Counted repetition r{n,m} is lowered here by bounded expansion
// (r^n·(r?)^{m-n}, and r^{n-1}·r+ for r{n,}): each copy mints fresh
// positions, so the position count — and the Glushkov automaton — grows
// linearly in the bounds. The budgeted entry points charge every position
// against the state quota and every follow edge against the set quota, so
// adversarial bounds like a{1,1000000} fail with kResourceExhausted
// instead of exhausting memory. Downstream analyses (BKW, dre_approx)
// operate on the compiled DFAs and never see kRepeat nodes.
#ifndef STAP_REGEX_GLUSHKOV_H_
#define STAP_REGEX_GLUSHKOV_H_

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"
#include "stap/regex/ast.h"

namespace stap {

// Builds the Glushkov automaton; `num_symbols` is the alphabet size the
// automaton should range over (symbols in the regex must be < num_symbols).
// Counted repetition is expanded; positions charge `budget`'s state quota
// and follow edges its set quota (nullptr = unlimited).
StatusOr<Nfa> GlushkovAutomaton(const Regex& regex, int num_symbols,
                                Budget* budget);

// Unbudgeted convenience; dies on expressions whose expansion would need a
// budget to be safe (use the budgeted overload for untrusted input).
Nfa GlushkovAutomaton(const Regex& regex, int num_symbols);

// True if the Glushkov automaton of `regex` is deterministic, i.e. the
// expression is one-unambiguous / satisfies UPA. Counted repetition is
// judged through its expansion, matching the W3C "UPA after expansion"
// reading.
bool IsOneUnambiguous(const Regex& regex, int num_symbols);

// Compiles to the canonical minimal DFA. The budgeted overload threads
// `budget` through expansion, determinization, and minimization.
StatusOr<Dfa> RegexToDfa(const Regex& regex, int num_symbols, Budget* budget);
Dfa RegexToDfa(const Regex& regex, int num_symbols);

}  // namespace stap

#endif  // STAP_REGEX_GLUSHKOV_H_
