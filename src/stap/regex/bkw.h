// Deciding whether a regular *language* is one-unambiguous, i.e.
// definable by a deterministic regular expression (Brüggemann-Klein &
// Wood, "One-Unambiguous Regular Languages", Inf. & Comp. 142, 1998).
//
// Section 5 of the paper leans on this notion: XML Schema restricts
// content models to deterministic expressions, and [4] shows a best
// deterministic approximation need not exist. IsOneUnambiguous (in
// glushkov.h) tests a given *expression*; this module tests a given
// *language* via the BKW orbit criterion on its minimal DFA:
//
//   L(M) is one-unambiguous iff the S-cut of the minimal DFA M (S = the
//   M-consistent symbols) has the orbit property and all its orbit
//   languages are one-unambiguous.
#ifndef STAP_REGEX_BKW_H_
#define STAP_REGEX_BKW_H_

#include "stap/automata/dfa.h"

namespace stap {

// True if L(dfa) is definable by some deterministic (one-unambiguous)
// regular expression.
bool IsOneUnambiguousLanguage(const Dfa& dfa);

}  // namespace stap

#endif  // STAP_REGEX_BKW_H_
