// Deciding whether a regular *language* is one-unambiguous, i.e.
// definable by a deterministic regular expression (Brüggemann-Klein &
// Wood, "One-Unambiguous Regular Languages", Inf. & Comp. 142, 1998).
//
// Section 5 of the paper leans on this notion: XML Schema restricts
// content models to deterministic expressions, and [4] shows a best
// deterministic approximation need not exist. IsOneUnambiguous (in
// glushkov.h) tests a given *expression*; this module tests a given
// *language* via the BKW orbit criterion on its minimal DFA:
//
//   L(M) is one-unambiguous iff the S-cut of the minimal DFA M (S = the
//   M-consistent symbols) has the orbit property and all its orbit
//   languages are one-unambiguous.
#ifndef STAP_REGEX_BKW_H_
#define STAP_REGEX_BKW_H_

#include "stap/automata/dfa.h"
#include "stap/automata/nfa.h"
#include "stap/base/budget.h"
#include "stap/base/status.h"

namespace stap {

// True if L(dfa) is definable by some deterministic (one-unambiguous)
// regular expression.
bool IsOneUnambiguousLanguage(const Dfa& dfa);

// Budgeted variant: every recursive orbit minimization charges the
// budget (the recursion multiplies minimal-DFA sizes, so the state quota
// is the effective bound). A null budget is unlimited.
StatusOr<bool> IsOneUnambiguousLanguage(const Dfa& dfa, Budget* budget);

// NFA entry point: determinizes first — schema-guided under `context`
// when non-null (automata/determinize.h), dense otherwise. With a
// context the verdict concerns the restricted language L(nfa) modulo
// context-dead prefixes; with an exact-mode context (language containing
// L(nfa)) it equals the dense verdict.
StatusOr<bool> IsOneUnambiguousLanguage(const Nfa& nfa, const Nfa* context,
                                        Budget* budget = nullptr);

}  // namespace stap

#endif  // STAP_REGEX_BKW_H_
