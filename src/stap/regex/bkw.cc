#include "stap/regex/bkw.h"

#include <utility>
#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/base/check.h"

namespace stap {

namespace {

// Orbit ids (strongly connected components w.r.t. mutual reachability;
// a state without a cycle through itself forms a trivial orbit).
std::vector<int> ComputeOrbits(const Dfa& dfa, int* num_orbits) {
  const int n = dfa.num_states();
  // Reachability closure (n is small here; cubic is fine).
  std::vector<std::vector<bool>> reach(n, std::vector<bool>(n, false));
  for (int q = 0; q < n; ++q) {
    std::vector<int> stack = {q};
    reach[q][q] = true;
    while (!stack.empty()) {
      int s = stack.back();
      stack.pop_back();
      for (int a = 0; a < dfa.num_symbols(); ++a) {
        int r = dfa.Next(s, a);
        if (r != kNoState && !reach[q][r]) {
          reach[q][r] = true;
          stack.push_back(r);
        }
      }
    }
  }
  std::vector<int> orbit(n, -1);
  int next = 0;
  for (int q = 0; q < n; ++q) {
    if (orbit[q] >= 0) continue;
    orbit[q] = next;
    for (int r = q + 1; r < n; ++r) {
      if (reach[q][r] && reach[r][q]) orbit[r] = next;
    }
    ++next;
  }
  *num_orbits = next;
  return orbit;
}

bool IsGate(const Dfa& dfa, const std::vector<int>& orbit, int q) {
  if (dfa.IsFinal(q)) return true;
  for (int a = 0; a < dfa.num_symbols(); ++a) {
    int r = dfa.Next(q, a);
    if (r != kNoState && orbit[r] != orbit[q]) return true;
  }
  return false;
}

// Orbit property: all gates of each orbit agree on finality and on their
// orbit-external transitions.
bool HasOrbitProperty(const Dfa& dfa, const std::vector<int>& orbit,
                      int num_orbits) {
  for (int k = 0; k < num_orbits; ++k) {
    int reference = -1;
    for (int q = 0; q < dfa.num_states(); ++q) {
      if (orbit[q] != k || !IsGate(dfa, orbit, q)) continue;
      if (reference < 0) {
        reference = q;
        continue;
      }
      if (dfa.IsFinal(q) != dfa.IsFinal(reference)) return false;
      for (int a = 0; a < dfa.num_symbols(); ++a) {
        int rq = dfa.Next(q, a);
        int rr = dfa.Next(reference, a);
        bool q_out = rq != kNoState && orbit[rq] != k;
        bool r_out = rr != kNoState && orbit[rr] != k;
        if (q_out != r_out) return false;
        if (q_out && rq != rr) return false;
      }
    }
  }
  return true;
}

StatusOr<bool> Decide(const Dfa& input, int depth, Budget* budget);

// The orbit automaton M_K(q): the orbit's internal transitions, initial
// state q, gates final.
StatusOr<bool> OrbitLanguagesAreOneUnambiguous(const Dfa& dfa,
                                               const std::vector<int>& orbit,
                                               int num_orbits, int depth,
                                               Budget* budget) {
  const int n = dfa.num_states();
  for (int k = 0; k < num_orbits; ++k) {
    // Entry states of the orbit: the automaton's initial state, or
    // targets of transitions from outside.
    std::vector<bool> entry(n, false);
    if (orbit[dfa.initial()] == k) entry[dfa.initial()] = true;
    for (int q = 0; q < n; ++q) {
      for (int a = 0; a < dfa.num_symbols(); ++a) {
        int r = dfa.Next(q, a);
        if (r != kNoState && orbit[q] != k && orbit[r] == k) entry[r] = true;
      }
    }
    // Size of the orbit; single-state orbits without internal transitions
    // are trivially fine.
    int orbit_size = 0;
    for (int q = 0; q < n; ++q) orbit_size += orbit[q] == k ? 1 : 0;
    bool has_internal = false;
    for (int q = 0; q < n && !has_internal; ++q) {
      if (orbit[q] != k) continue;
      for (int a = 0; a < dfa.num_symbols(); ++a) {
        int r = dfa.Next(q, a);
        if (r != kNoState && orbit[r] == k) has_internal = true;
      }
    }
    if (orbit_size == 1 && !has_internal) continue;

    for (int q0 = 0; q0 < n; ++q0) {
      if (orbit[q0] != k || !entry[q0]) continue;
      Dfa sub(n, dfa.num_symbols());
      sub.SetInitial(q0);
      for (int q = 0; q < n; ++q) {
        if (orbit[q] != k) continue;
        if (IsGate(dfa, orbit, q)) sub.SetFinal(q);
        for (int a = 0; a < dfa.num_symbols(); ++a) {
          int r = dfa.Next(q, a);
          if (r != kNoState && orbit[r] == k) sub.SetTransition(q, a, r);
        }
      }
      StatusOr<bool> sub_ok = Decide(sub, depth + 1, budget);
      if (!sub_ok.ok()) return sub_ok.status();
      if (!*sub_ok) return false;
    }
  }
  return true;
}

StatusOr<bool> Decide(const Dfa& input, int depth, Budget* budget) {
  // Each level either removes a transition (S-cut) or splits into
  // strictly smaller orbit automata, so depth is bounded by the input
  // size; the guard is a defensive backstop only.
  if (depth > 1000) return false;
  StatusOr<Dfa> minimized = Minimize(input, budget);
  if (!minimized.ok()) return minimized.status();
  Dfa dfa = *std::move(minimized);
  const int n = dfa.num_states();
  if (dfa.IsEmpty()) return true;
  if (n == 1 && dfa.Size() == 1) return true;  // language {ε}

  // M-consistent symbols: δ(f, a) is one common state for all finals.
  std::vector<bool> consistent(dfa.num_symbols(), false);
  for (int a = 0; a < dfa.num_symbols(); ++a) {
    int common = -2;  // -2 = unset
    bool ok = true;
    for (int q = 0; q < n && ok; ++q) {
      if (!dfa.IsFinal(q)) continue;
      int r = dfa.Next(q, a);
      if (r == kNoState) {
        ok = false;
      } else if (common == -2) {
        common = r;
      } else if (common != r) {
        ok = false;
      }
    }
    consistent[a] = ok && common != -2;
  }

  // S-cut: drop δ(f, a) for final f and consistent a.
  Dfa cut = dfa;
  bool removed = false;
  for (int q = 0; q < n; ++q) {
    if (!dfa.IsFinal(q)) continue;
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      if (consistent[a] && dfa.Next(q, a) != kNoState) {
        cut.SetTransition(q, a, kNoState);
        removed = true;
      }
    }
  }

  int num_orbits = 0;
  std::vector<int> orbit = ComputeOrbits(cut, &num_orbits);
  if (!HasOrbitProperty(cut, orbit, num_orbits)) return false;

  // Progress guard: if nothing was cut and the whole automaton is one
  // non-trivial orbit, the recursion would not shrink — BKW shows such a
  // language is one-unambiguous only in the trivial cases handled above.
  if (!removed && num_orbits == 1 && n > 0) {
    bool has_transition = false;
    for (int q = 0; q < n && !has_transition; ++q) {
      for (int a = 0; a < dfa.num_symbols(); ++a) {
        if (cut.Next(q, a) != kNoState) has_transition = true;
      }
    }
    if (has_transition) return false;
  }

  return OrbitLanguagesAreOneUnambiguous(cut, orbit, num_orbits, depth,
                                         budget);
}

}  // namespace

bool IsOneUnambiguousLanguage(const Dfa& dfa) {
  StatusOr<bool> result = Decide(dfa, 0, nullptr);
  return *std::move(result);  // a null budget never exhausts
}

StatusOr<bool> IsOneUnambiguousLanguage(const Dfa& dfa, Budget* budget) {
  return Decide(dfa, 0, budget);
}

StatusOr<bool> IsOneUnambiguousLanguage(const Nfa& nfa, const Nfa* context,
                                        Budget* budget) {
  StatusOr<Dfa> dfa = Determinize(nfa, context, budget);
  if (!dfa.ok()) return dfa.status();
  return Decide(*dfa, 0, budget);
}

}  // namespace stap
