#include "stap/regex/from_dfa.h"

#include <vector>

namespace stap {

namespace {

// Arc labels during state elimination; nullptr denotes the empty set.
using Arc = RegexPtr;

Arc UnionArcs(const Arc& a, const Arc& b) {
  if (a == nullptr) return b;
  if (b == nullptr) return a;
  // Fold ε into r? / r* where it keeps the output tidy.
  if (a->kind() == RegexKind::kEpsilon) {
    if (b->kind() == RegexKind::kEpsilon) return a;
    if (b->kind() == RegexKind::kStar || b->kind() == RegexKind::kOptional) {
      return b;
    }
    if (b->kind() == RegexKind::kPlus) return Regex::Star(b->children()[0]);
    return Regex::Optional(b);
  }
  if (b->kind() == RegexKind::kEpsilon) return UnionArcs(b, a);
  return Regex::Union({a, b});
}

Arc ConcatArcs(const Arc& a, const Arc& b) {
  if (a == nullptr || b == nullptr) return nullptr;
  if (a->kind() == RegexKind::kEpsilon) return b;
  if (b->kind() == RegexKind::kEpsilon) return a;
  return Regex::Concat({a, b});
}

Arc StarArc(const Arc& a) {
  if (a == nullptr || a->kind() == RegexKind::kEpsilon) {
    return Regex::Epsilon();
  }
  if (a->kind() == RegexKind::kStar) return a;
  return Regex::Star(a);
}

}  // namespace

RegexPtr DfaToRegex(const Dfa& input) {
  Dfa dfa = input.Trimmed();
  const int n = dfa.num_states();
  if (dfa.IsEmpty()) return Regex::EmptySet();

  // Nodes 0..n-1 are DFA states, node n is a fresh source, node n+1 a
  // fresh sink; arcs[i][j] is the expression for paths i -> j.
  const int source = n;
  const int sink = n + 1;
  std::vector<std::vector<Arc>> arcs(n + 2, std::vector<Arc>(n + 2, nullptr));
  for (int q = 0; q < n; ++q) {
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState) {
        arcs[q][r] = UnionArcs(arcs[q][r], Regex::Symbol(a));
      }
    }
    if (dfa.IsFinal(q)) arcs[q][sink] = Regex::Epsilon();
  }
  arcs[source][dfa.initial()] = Regex::Epsilon();

  // Eliminate the DFA states one by one.
  std::vector<bool> alive(n + 2, true);
  for (int k = 0; k < n; ++k) {
    alive[k] = false;
    Arc loop = StarArc(arcs[k][k]);
    for (int i = 0; i < n + 2; ++i) {
      if (!alive[i] || arcs[i][k] == nullptr) continue;
      for (int j = 0; j < n + 2; ++j) {
        if (!alive[j] || arcs[k][j] == nullptr) continue;
        Arc through = ConcatArcs(ConcatArcs(arcs[i][k], loop), arcs[k][j]);
        arcs[i][j] = UnionArcs(arcs[i][j], through);
      }
    }
  }

  Arc result = arcs[source][sink];
  return result == nullptr ? Regex::EmptySet() : result;
}

}  // namespace stap
