// Regular expression ASTs over integer alphabets.
//
// Grammar (paper, Section 2.1, extended with counted repetition):
//   r ::= ∅ | ε | a | r·r | r+r | r* | r+ | r? | r{n,m} | r{n,}
// Nodes are immutable and shared; RegexPtr values are cheap to copy and
// sub-expressions may be reused freely.
//
// Counted repetition r{n,m} denotes the union of r^n .. r^m (r{n,} the
// union of r^n, r^{n+1}, ...). It is a first-class node so that W3C-XSD
// occurrence bounds survive import → export round trips instead of being
// expanded; compilation to automata expands it (regex/glushkov.h) under a
// Budget, so adversarial bounds fail with kResourceExhausted instead of
// exhausting memory.
#ifndef STAP_REGEX_AST_H_
#define STAP_REGEX_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "stap/automata/alphabet.h"
#include "stap/automata/nfa.h"

namespace stap {

enum class RegexKind {
  kEmptySet,  // ∅
  kEpsilon,   // ε
  kSymbol,    // a
  kConcat,    // r1 · r2 · ... · rk
  kUnion,     // r1 + r2 + ... + rk
  kStar,      // r*
  kPlus,      // r+
  kOptional,  // r?
  kRepeat,    // r{n,m} / r{n,}
};

class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

class Regex {
 public:
  // Sentinel for the upper bound of r{n,} (no maximum).
  static constexpr int kUnboundedRepeat = -1;
  // Largest accepted repetition bound. Far above anything compilable
  // (compilation expands bounds under a Budget), but small enough that
  // bound arithmetic never overflows int.
  static constexpr int kMaxRepeatBound = 1000000000;

  static RegexPtr EmptySet();
  static RegexPtr Epsilon();
  static RegexPtr Symbol(int symbol);
  // Concat/Union of zero children normalize to Epsilon/EmptySet; a single
  // child is returned unwrapped.
  static RegexPtr Concat(std::vector<RegexPtr> children);
  static RegexPtr Union(std::vector<RegexPtr> children);
  static RegexPtr Star(RegexPtr child);
  static RegexPtr Plus(RegexPtr child);
  static RegexPtr Optional(RegexPtr child);
  // Counted repetition r{min,max}; max == kUnboundedRepeat means r{min,}.
  // Requires 0 <= min <= max <= kMaxRepeatBound (checked). Degenerate
  // bounds normalize to the classic operators: {0,0} → ε, {1,1} → r,
  // {0,1} → r?, {0,∞} → r*, {1,∞} → r+; ε/∅ children fold away.
  static RegexPtr Repeat(RegexPtr child, int min, int max);

  // Convenience: the expression a1·a2·...·ak for a word.
  static RegexPtr Literal(const Word& word);

  RegexKind kind() const { return kind_; }

  // Require: kind() == kSymbol.
  int symbol() const { return symbol_; }

  // Require: kind() == kRepeat. repeat_max() is kUnboundedRepeat for r{n,}.
  int repeat_min() const { return repeat_min_; }
  int repeat_max() const { return repeat_max_; }

  // Children of kConcat/kUnion (>= 2) or kStar/kPlus/kOptional/kRepeat
  // (exactly 1).
  const std::vector<RegexPtr>& children() const { return children_; }

  // True if ε is in the denoted language.
  bool IsNullable() const;

  // Number of AST nodes (counted repetition counts as one node, not as
  // its expansion).
  int NumNodes() const;

  // True if some subexpression is a kRepeat node, i.e. the expression
  // carries counted occurrence bounds worth preserving on export.
  bool ContainsRepeat() const;

  // Largest symbol id mentioned, or kNoSymbol for symbol-free expressions.
  int MaxSymbol() const;

  // Rewrites every symbol a to symbol_map[a]. Returns nullptr if the
  // expression mentions a symbol with no mapping (out of range or mapped
  // to kNoSymbol). Used to carry content-model provenance across alphabet
  // changes (schema reduce / Σ↔∆ conversions).
  static RegexPtr Substitute(const RegexPtr& regex,
                             const std::vector<int>& symbol_map);

  // Renders with `|` for union, juxtaposition for concatenation, postfix
  // * + ?, `%` for ε and `~` for ∅, resolving symbol ids via `alphabet`.
  std::string ToString(const Alphabet& alphabet) const;

 private:
  Regex(RegexKind kind, int symbol, std::vector<RegexPtr> children)
      : kind_(kind), symbol_(symbol), children_(std::move(children)) {}

  RegexKind kind_;
  int symbol_;
  int repeat_min_ = 0;
  int repeat_max_ = 0;
  std::vector<RegexPtr> children_;
};

}  // namespace stap

#endif  // STAP_REGEX_AST_H_
