// Regular expression ASTs over integer alphabets.
//
// Grammar (paper, Section 2.1):  r ::= ∅ | ε | a | r·r | r+r | r* | r+ | r?
// Nodes are immutable and shared; RegexPtr values are cheap to copy and
// sub-expressions may be reused freely.
#ifndef STAP_REGEX_AST_H_
#define STAP_REGEX_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "stap/automata/alphabet.h"
#include "stap/automata/nfa.h"

namespace stap {

enum class RegexKind {
  kEmptySet,  // ∅
  kEpsilon,   // ε
  kSymbol,    // a
  kConcat,    // r1 · r2 · ... · rk
  kUnion,     // r1 + r2 + ... + rk
  kStar,      // r*
  kPlus,      // r+
  kOptional,  // r?
};

class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

class Regex {
 public:
  static RegexPtr EmptySet();
  static RegexPtr Epsilon();
  static RegexPtr Symbol(int symbol);
  // Concat/Union of zero children normalize to Epsilon/EmptySet; a single
  // child is returned unwrapped.
  static RegexPtr Concat(std::vector<RegexPtr> children);
  static RegexPtr Union(std::vector<RegexPtr> children);
  static RegexPtr Star(RegexPtr child);
  static RegexPtr Plus(RegexPtr child);
  static RegexPtr Optional(RegexPtr child);

  // Convenience: the expression a1·a2·...·ak for a word.
  static RegexPtr Literal(const Word& word);

  RegexKind kind() const { return kind_; }

  // Require: kind() == kSymbol.
  int symbol() const { return symbol_; }

  // Children of kConcat/kUnion (>= 2) or kStar/kPlus/kOptional (exactly 1).
  const std::vector<RegexPtr>& children() const { return children_; }

  // True if ε is in the denoted language.
  bool IsNullable() const;

  // Number of AST nodes.
  int NumNodes() const;

  // Renders with `|` for union, juxtaposition for concatenation, postfix
  // * + ?, `%` for ε and `~` for ∅, resolving symbol ids via `alphabet`.
  std::string ToString(const Alphabet& alphabet) const;

 private:
  Regex(RegexKind kind, int symbol, std::vector<RegexPtr> children)
      : kind_(kind), symbol_(symbol), children_(std::move(children)) {}

  RegexKind kind_;
  int symbol_;
  std::vector<RegexPtr> children_;
};

}  // namespace stap

#endif  // STAP_REGEX_AST_H_
