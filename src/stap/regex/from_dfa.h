// DFA -> regular expression via state elimination.
//
// Used to render schema content models back into the textual format. The
// produced expression is equivalent to the automaton but not guaranteed to
// be deterministic (one-unambiguous); Section 5 of the paper discusses why
// a best deterministic expression need not even exist.
#ifndef STAP_REGEX_FROM_DFA_H_
#define STAP_REGEX_FROM_DFA_H_

#include "stap/automata/dfa.h"
#include "stap/regex/ast.h"

namespace stap {

// Returns a regular expression for L(dfa).
RegexPtr DfaToRegex(const Dfa& dfa);

}  // namespace stap

#endif  // STAP_REGEX_FROM_DFA_H_
