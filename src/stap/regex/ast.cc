#include "stap/regex/ast.h"

#include <algorithm>
#include <sstream>

#include "stap/base/check.h"

namespace stap {

RegexPtr Regex::EmptySet() {
  return RegexPtr(new Regex(RegexKind::kEmptySet, kNoSymbol, {}));
}

RegexPtr Regex::Epsilon() {
  return RegexPtr(new Regex(RegexKind::kEpsilon, kNoSymbol, {}));
}

RegexPtr Regex::Symbol(int symbol) {
  STAP_CHECK(symbol >= 0);
  return RegexPtr(new Regex(RegexKind::kSymbol, symbol, {}));
}

RegexPtr Regex::Concat(std::vector<RegexPtr> children) {
  if (children.empty()) return Epsilon();
  if (children.size() == 1) return children[0];
  return RegexPtr(new Regex(RegexKind::kConcat, kNoSymbol, std::move(children)));
}

RegexPtr Regex::Union(std::vector<RegexPtr> children) {
  if (children.empty()) return EmptySet();
  if (children.size() == 1) return children[0];
  return RegexPtr(new Regex(RegexKind::kUnion, kNoSymbol, std::move(children)));
}

RegexPtr Regex::Star(RegexPtr child) {
  return RegexPtr(new Regex(RegexKind::kStar, kNoSymbol, {std::move(child)}));
}

RegexPtr Regex::Plus(RegexPtr child) {
  return RegexPtr(new Regex(RegexKind::kPlus, kNoSymbol, {std::move(child)}));
}

RegexPtr Regex::Optional(RegexPtr child) {
  return RegexPtr(
      new Regex(RegexKind::kOptional, kNoSymbol, {std::move(child)}));
}

RegexPtr Regex::Repeat(RegexPtr child, int min, int max) {
  STAP_CHECK(min >= 0 && min <= kMaxRepeatBound);
  STAP_CHECK(max == kUnboundedRepeat || (max >= min && max <= kMaxRepeatBound));
  // ε{n,m} = ε; ∅{n,m} = ε when n == 0 (zero copies allowed), ∅ otherwise.
  if (child->kind() == RegexKind::kEpsilon) return child;
  if (child->kind() == RegexKind::kEmptySet) {
    return min == 0 ? Epsilon() : child;
  }
  if (max == kUnboundedRepeat) {
    if (min == 0) return Star(std::move(child));
    if (min == 1) return Plus(std::move(child));
  } else {
    if (max == 0) return Epsilon();
    if (min == 0 && max == 1) return Optional(std::move(child));
    if (min == 1 && max == 1) return child;
  }
  Regex* node = new Regex(RegexKind::kRepeat, kNoSymbol, {std::move(child)});
  node->repeat_min_ = min;
  node->repeat_max_ = max;
  return RegexPtr(node);
}

RegexPtr Regex::Literal(const Word& word) {
  std::vector<RegexPtr> parts;
  parts.reserve(word.size());
  for (int symbol : word) parts.push_back(Symbol(symbol));
  return Concat(std::move(parts));
}

bool Regex::IsNullable() const {
  switch (kind_) {
    case RegexKind::kEmptySet:
      return false;
    case RegexKind::kEpsilon:
      return true;
    case RegexKind::kSymbol:
      return false;
    case RegexKind::kConcat: {
      for (const RegexPtr& child : children_) {
        if (!child->IsNullable()) return false;
      }
      return true;
    }
    case RegexKind::kUnion: {
      for (const RegexPtr& child : children_) {
        if (child->IsNullable()) return true;
      }
      return false;
    }
    case RegexKind::kStar:
    case RegexKind::kOptional:
      return true;
    case RegexKind::kPlus:
      return children_[0]->IsNullable();
    case RegexKind::kRepeat:
      return repeat_min_ == 0 || children_[0]->IsNullable();
  }
  return false;
}

int Regex::NumNodes() const {
  int count = 1;
  for (const RegexPtr& child : children_) count += child->NumNodes();
  return count;
}

bool Regex::ContainsRepeat() const {
  if (kind_ == RegexKind::kRepeat) return true;
  for (const RegexPtr& child : children_) {
    if (child->ContainsRepeat()) return true;
  }
  return false;
}

int Regex::MaxSymbol() const {
  int max_symbol = kind_ == RegexKind::kSymbol ? symbol_ : kNoSymbol;
  for (const RegexPtr& child : children_) {
    max_symbol = std::max(max_symbol, child->MaxSymbol());
  }
  return max_symbol;
}

RegexPtr Regex::Substitute(const RegexPtr& regex,
                           const std::vector<int>& symbol_map) {
  switch (regex->kind()) {
    case RegexKind::kEmptySet:
    case RegexKind::kEpsilon:
      return regex;
    case RegexKind::kSymbol: {
      int a = regex->symbol();
      if (a < 0 || a >= static_cast<int>(symbol_map.size()) ||
          symbol_map[a] == kNoSymbol) {
        return nullptr;
      }
      return Symbol(symbol_map[a]);
    }
    case RegexKind::kConcat:
    case RegexKind::kUnion: {
      std::vector<RegexPtr> children;
      children.reserve(regex->children().size());
      for (const RegexPtr& child : regex->children()) {
        RegexPtr mapped = Substitute(child, symbol_map);
        if (mapped == nullptr) return nullptr;
        children.push_back(std::move(mapped));
      }
      // Bypass the Concat/Union factories: they would unwrap singleton
      // vectors, but the input has >= 2 children by construction.
      return RegexPtr(new Regex(regex->kind(), kNoSymbol, std::move(children)));
    }
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOptional:
    case RegexKind::kRepeat: {
      RegexPtr child = Substitute(regex->children()[0], symbol_map);
      if (child == nullptr) return nullptr;
      if (regex->kind() == RegexKind::kStar) return Star(std::move(child));
      if (regex->kind() == RegexKind::kPlus) return Plus(std::move(child));
      if (regex->kind() == RegexKind::kOptional) {
        return Optional(std::move(child));
      }
      return Repeat(std::move(child), regex->repeat_min(),
                    regex->repeat_max());
    }
  }
  return nullptr;
}

namespace {

// Precedence levels for printing: union < concat < postfix.
enum Level { kUnionLevel = 0, kConcatLevel = 1, kPostfixLevel = 2 };

void Print(const Regex& regex, const Alphabet& alphabet, int parent_level,
           std::ostringstream& os) {
  auto parenthesize_if = [&](int my_level, auto body) {
    bool need = my_level < parent_level;
    if (need) os << "(";
    body();
    if (need) os << ")";
  };
  switch (regex.kind()) {
    case RegexKind::kEmptySet:
      os << "~";
      break;
    case RegexKind::kEpsilon:
      os << "%";
      break;
    case RegexKind::kSymbol:
      os << alphabet.Name(regex.symbol());
      break;
    case RegexKind::kUnion:
      parenthesize_if(kUnionLevel, [&] {
        for (size_t i = 0; i < regex.children().size(); ++i) {
          if (i > 0) os << " | ";
          Print(*regex.children()[i], alphabet, kUnionLevel + 1, os);
        }
      });
      break;
    case RegexKind::kConcat:
      parenthesize_if(kConcatLevel, [&] {
        for (size_t i = 0; i < regex.children().size(); ++i) {
          if (i > 0) os << " ";
          Print(*regex.children()[i], alphabet, kConcatLevel + 1, os);
        }
      });
      break;
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOptional: {
      Print(*regex.children()[0], alphabet, kPostfixLevel, os);
      os << (regex.kind() == RegexKind::kStar
                 ? "*"
                 : regex.kind() == RegexKind::kPlus ? "+" : "?");
      break;
    }
    case RegexKind::kRepeat: {
      Print(*regex.children()[0], alphabet, kPostfixLevel, os);
      os << "{" << regex.repeat_min();
      if (regex.repeat_max() == Regex::kUnboundedRepeat) {
        os << ",}";
      } else if (regex.repeat_max() == regex.repeat_min()) {
        os << "}";
      } else {
        os << "," << regex.repeat_max() << "}";
      }
      break;
    }
  }
}

}  // namespace

std::string Regex::ToString(const Alphabet& alphabet) const {
  std::ostringstream os;
  Print(*this, alphabet, kUnionLevel, os);
  return os.str();
}

}  // namespace stap
