#include "stap/regex/ast.h"

#include <sstream>

#include "stap/base/check.h"

namespace stap {

RegexPtr Regex::EmptySet() {
  return RegexPtr(new Regex(RegexKind::kEmptySet, kNoSymbol, {}));
}

RegexPtr Regex::Epsilon() {
  return RegexPtr(new Regex(RegexKind::kEpsilon, kNoSymbol, {}));
}

RegexPtr Regex::Symbol(int symbol) {
  STAP_CHECK(symbol >= 0);
  return RegexPtr(new Regex(RegexKind::kSymbol, symbol, {}));
}

RegexPtr Regex::Concat(std::vector<RegexPtr> children) {
  if (children.empty()) return Epsilon();
  if (children.size() == 1) return children[0];
  return RegexPtr(new Regex(RegexKind::kConcat, kNoSymbol, std::move(children)));
}

RegexPtr Regex::Union(std::vector<RegexPtr> children) {
  if (children.empty()) return EmptySet();
  if (children.size() == 1) return children[0];
  return RegexPtr(new Regex(RegexKind::kUnion, kNoSymbol, std::move(children)));
}

RegexPtr Regex::Star(RegexPtr child) {
  return RegexPtr(new Regex(RegexKind::kStar, kNoSymbol, {std::move(child)}));
}

RegexPtr Regex::Plus(RegexPtr child) {
  return RegexPtr(new Regex(RegexKind::kPlus, kNoSymbol, {std::move(child)}));
}

RegexPtr Regex::Optional(RegexPtr child) {
  return RegexPtr(
      new Regex(RegexKind::kOptional, kNoSymbol, {std::move(child)}));
}

RegexPtr Regex::Literal(const Word& word) {
  std::vector<RegexPtr> parts;
  parts.reserve(word.size());
  for (int symbol : word) parts.push_back(Symbol(symbol));
  return Concat(std::move(parts));
}

bool Regex::IsNullable() const {
  switch (kind_) {
    case RegexKind::kEmptySet:
      return false;
    case RegexKind::kEpsilon:
      return true;
    case RegexKind::kSymbol:
      return false;
    case RegexKind::kConcat: {
      for (const RegexPtr& child : children_) {
        if (!child->IsNullable()) return false;
      }
      return true;
    }
    case RegexKind::kUnion: {
      for (const RegexPtr& child : children_) {
        if (child->IsNullable()) return true;
      }
      return false;
    }
    case RegexKind::kStar:
    case RegexKind::kOptional:
      return true;
    case RegexKind::kPlus:
      return children_[0]->IsNullable();
  }
  return false;
}

int Regex::NumNodes() const {
  int count = 1;
  for (const RegexPtr& child : children_) count += child->NumNodes();
  return count;
}

namespace {

// Precedence levels for printing: union < concat < postfix.
enum Level { kUnionLevel = 0, kConcatLevel = 1, kPostfixLevel = 2 };

void Print(const Regex& regex, const Alphabet& alphabet, int parent_level,
           std::ostringstream& os) {
  auto parenthesize_if = [&](int my_level, auto body) {
    bool need = my_level < parent_level;
    if (need) os << "(";
    body();
    if (need) os << ")";
  };
  switch (regex.kind()) {
    case RegexKind::kEmptySet:
      os << "~";
      break;
    case RegexKind::kEpsilon:
      os << "%";
      break;
    case RegexKind::kSymbol:
      os << alphabet.Name(regex.symbol());
      break;
    case RegexKind::kUnion:
      parenthesize_if(kUnionLevel, [&] {
        for (size_t i = 0; i < regex.children().size(); ++i) {
          if (i > 0) os << " | ";
          Print(*regex.children()[i], alphabet, kUnionLevel + 1, os);
        }
      });
      break;
    case RegexKind::kConcat:
      parenthesize_if(kConcatLevel, [&] {
        for (size_t i = 0; i < regex.children().size(); ++i) {
          if (i > 0) os << " ";
          Print(*regex.children()[i], alphabet, kConcatLevel + 1, os);
        }
      });
      break;
    case RegexKind::kStar:
    case RegexKind::kPlus:
    case RegexKind::kOptional: {
      Print(*regex.children()[0], alphabet, kPostfixLevel, os);
      os << (regex.kind() == RegexKind::kStar
                 ? "*"
                 : regex.kind() == RegexKind::kPlus ? "+" : "?");
      break;
    }
  }
}

}  // namespace

std::string Regex::ToString(const Alphabet& alphabet) const {
  std::ostringstream os;
  Print(*this, alphabet, kUnionLevel, os);
  return os.str();
}

}  // namespace stap
