#include "stap/regex/dre_approx.h"

#include <vector>

#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/regex/glushkov.h"

namespace stap {

namespace {

// From each state, can some (possibly empty) path reach a transition on
// `symbol`? Computed for all states at once by backward propagation.
std::vector<bool> CanStillSee(const Dfa& dfa, int symbol) {
  std::vector<bool> result(dfa.num_states(), false);
  for (int q = 0; q < dfa.num_states(); ++q) {
    if (dfa.Next(q, symbol) != kNoState) result[q] = true;
  }
  bool changed = true;
  while (changed) {
    changed = false;
    for (int q = 0; q < dfa.num_states(); ++q) {
      if (result[q]) continue;
      for (int a = 0; a < dfa.num_symbols(); ++a) {
        int r = dfa.Next(q, a);
        if (r != kNoState && result[r]) {
          result[q] = true;
          changed = true;
          break;
        }
      }
    }
  }
  return result;
}

// L(dfa) ∩ (Σ \ group)* non-empty?
bool OmittableGroup(const Dfa& dfa, const std::vector<bool>& in_group) {
  // BFS avoiding group transitions.
  std::vector<bool> seen(dfa.num_states(), false);
  std::vector<int> stack = {dfa.initial()};
  seen[dfa.initial()] = true;
  while (!stack.empty()) {
    int q = stack.back();
    stack.pop_back();
    if (dfa.IsFinal(q)) return true;
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      if (in_group[a]) continue;
      int r = dfa.Next(q, a);
      if (r != kNoState && !seen[r]) {
        seen[r] = true;
        stack.push_back(r);
      }
    }
  }
  return false;
}

}  // namespace

RegexPtr ApproximateDre(const Dfa& input) {
  Dfa dfa = input.Trimmed();
  if (dfa.IsEmpty()) return Regex::EmptySet();
  const int num_symbols = dfa.num_symbols();

  // Occurring symbols (the trimmed automaton only keeps useful arcs).
  std::vector<bool> occurs(num_symbols, false);
  for (int q = 0; q < dfa.num_states(); ++q) {
    for (int a = 0; a < num_symbols; ++a) {
      if (dfa.Next(q, a) != kNoState) occurs[a] = true;
    }
  }

  // before[a][b]: some accepted word has an a strictly before a b.
  std::vector<std::vector<bool>> before(
      num_symbols, std::vector<bool>(num_symbols, false));
  for (int b = 0; b < num_symbols; ++b) {
    if (!occurs[b]) continue;
    std::vector<bool> sees_b = CanStillSee(dfa, b);
    for (int q = 0; q < dfa.num_states(); ++q) {
      for (int a = 0; a < num_symbols; ++a) {
        int r = dfa.Next(q, a);
        if (r != kNoState && sees_b[r]) before[a][b] = true;
      }
    }
  }

  // Groups: strongly connected components of the precedence graph
  // (`before` is not transitive — witnesses for a≺b and b≺c can be
  // different words — so close it first), in topological order of the
  // condensation. Any consecutive pair x,y in an accepted word has
  // before[x][y], hence group(x) <= group(y): scanning a word never goes
  // back to an earlier group, which is what makes the chain sound.
  std::vector<std::vector<bool>> reach = before;
  for (int k = 0; k < num_symbols; ++k) {
    for (int a = 0; a < num_symbols; ++a) {
      if (!reach[a][k]) continue;
      for (int b = 0; b < num_symbols; ++b) {
        if (reach[k][b]) reach[a][b] = true;
      }
    }
  }
  std::vector<std::vector<int>> groups;
  std::vector<bool> assigned(num_symbols, false);
  int remaining = 0;
  for (int a = 0; a < num_symbols; ++a) remaining += occurs[a] ? 1 : 0;
  while (remaining > 0) {
    // A minimal unassigned SCC: no unassigned symbol outside it strictly
    // precedes it. The condensation is a DAG, so one always exists.
    int pick = -1;
    for (int a = 0; a < num_symbols && pick < 0; ++a) {
      if (!occurs[a] || assigned[a]) continue;
      bool minimal = true;
      for (int b = 0; b < num_symbols && minimal; ++b) {
        if (b == a || !occurs[b] || assigned[b]) continue;
        if (reach[b][a] && !reach[a][b]) minimal = false;
      }
      if (minimal) pick = a;
    }
    std::vector<int> group = {pick};
    assigned[pick] = true;
    for (int b = 0; b < num_symbols; ++b) {
      if (b == pick || !occurs[b] || assigned[b]) continue;
      if (reach[pick][b] && reach[b][pick]) {
        group.push_back(b);
        assigned[b] = true;
      }
    }
    remaining -= static_cast<int>(group.size());
    groups.push_back(std::move(group));
  }

  // One factor per group with the tightest sound quantifier.
  std::vector<RegexPtr> factors;
  for (const std::vector<int>& group : groups) {
    std::vector<bool> in_group(num_symbols, false);
    for (int a : group) in_group[a] = true;
    bool repeatable = group.size() > 1;
    for (int a : group) {
      if (before[a][a]) repeatable = true;
    }
    bool omittable = OmittableGroup(dfa, in_group);

    std::vector<RegexPtr> alternatives;
    for (int a : group) alternatives.push_back(Regex::Symbol(a));
    RegexPtr factor = Regex::Union(std::move(alternatives));
    if (repeatable) {
      factor = omittable ? Regex::Star(std::move(factor))
                         : Regex::Plus(std::move(factor));
    } else if (omittable) {
      factor = Regex::Optional(std::move(factor));
    }
    factors.push_back(std::move(factor));
  }
  return Regex::Concat(std::move(factors));
}

StatusOr<RegexPtr> ApproximateDreUnderSchema(const Nfa& nfa,
                                             const Nfa* context,
                                             Budget* budget) {
  StatusOr<Dfa> dfa = Determinize(nfa, context, budget);
  if (!dfa.ok()) return dfa.status();
  // The chain heuristic trims first, which also drops the schema path's
  // dead sink.
  return ApproximateDre(*dfa);
}

bool ApproximateDreIsExact(const Dfa& dfa) {
  RegexPtr approx = ApproximateDre(dfa);
  return DfaEquivalent(RegexToDfa(*approx, dfa.num_symbols()), dfa);
}

}  // namespace stap
