// The schema families used in the paper's lower-bound proofs, plus helper
// constructions. Each family is referenced by the theorem that introduces
// it; the benchmarks sweep the parameter n and regenerate the claimed
// growth curves.
#ifndef STAP_GEN_FAMILIES_H_
#define STAP_GEN_FAMILIES_H_

#include <utility>

#include "stap/regex/ast.h"
#include "stap/schema/edtd.h"

namespace stap {

// An EDTD accepting exactly the *unary* trees whose root-to-leaf label
// sequence lies in L(regex) (non-empty words only). Built from the
// Glushkov automaton, so the EDTD is linear in the expression.
Edtd UnaryEdtdFromRegex(const Regex& regex, const Alphabet& sigma);

// Theorem 3.2: EDTD of size O(n) over {a,b} for the unary-tree language
// (a+b)*a(a+b)^n, whose minimal upper XSD-approximation needs Ω(2^n)
// types.
Edtd Theorem32Family(int n);

// Theorem 3.6: stEDTDs D1 ("at most n a-labeled nodes") and
// D2 ("at most n b-labeled nodes") over unary trees; the minimal upper
// approximation of the union has Ω(n²) types.
std::pair<Edtd, Edtd> Theorem36Family(int n);

// Theorem 3.8: stEDTDs for unary a-chains whose length is a multiple of
// p1 / p2, the two smallest primes larger than n; the (exact) intersection
// needs Ω(p1·p2) types.
std::pair<Edtd, Edtd> Theorem38Family(int n);

// Theorem 4.3: the DTDs D1 (linear trees a*b) and D2 (a-trees of rank <=
// 2), whose union has infinitely many maximal lower XSD-approximations.
std::pair<Edtd, Edtd> Theorem43Schemas();

// Theorem 4.3: the n-th maximal lower XSD-approximation X_n of
// L(D1) ∪ L(D2).
Edtd Theorem43LowerApproximation(int n);

// Theorem 4.11: the unary-alphabet DTD D with a -> a + ε; its complement
// (trees with a node of rank >= 2) has infinitely many maximal lower
// approximations.
Edtd Theorem411Dtd();

// Theorem 4.11: the n-th maximal lower XSD-approximation X_n of the
// complement of Theorem411Dtd(). (The rules are reconstructed from the
// proof's argument: unary spine of length n, a node with >= 2 children at
// depth n, arbitrary a-trees below depth n+1.)
Edtd Theorem411LowerApproximation(int n);

// Example 2.6's EDTD (types τ1, τ2¹, τ2² over {a, b}), used by tests to
// reproduce the worked type automaton.
Edtd Example26Edtd();

// A counted-content family shaped like real-world occurrence-constrained
// schemas: a document of min..max items (counted repetition Item{n,m}),
// each item holding 1..3 fields, plus optional header/footer framing.
// The schema *source* stays O(1) while the compiled content DFA grows
// linearly in `max_items`; bench_counted A/Bs that gap through the
// compile→export pipeline. Requires 0 <= min_items <= max_items,
// max_items >= 1.
Edtd CountedFamily(int min_items, int max_items);

// Ambient-schema context for schema-guided determinization benchmarks:
// the DFA-shaped NFA of all words over `num_symbols` symbols containing
// at most `max_count` occurrences of `symbol` (states 0..max_count count
// occurrences; exceeding the cap is dead). Under this context the
// Theorem 3.2 type automaton's 2^n dense subsets collapse to O(n·k)
// live pairs, the motivating case of Niehren/Sakho/Al Serhali
// (PAPERS.md).
Nfa BoundedLetterContext(int symbol, int max_count, int num_symbols);

}  // namespace stap

#endif  // STAP_GEN_FAMILIES_H_
