// Seeded random schema and document generators for property tests and
// benchmarks.
#ifndef STAP_GEN_RANDOM_H_
#define STAP_GEN_RANDOM_H_

#include <cstdint>
#include <optional>
#include <random>

#include "stap/count/counter.h"
#include "stap/schema/edtd.h"
#include "stap/schema/single_type.h"
#include "stap/tree/tree.h"

namespace stap {

struct RandomSchemaParams {
  int num_symbols = 3;
  int num_types = 5;
  // Average number of distinct child types referenced per content model.
  int content_breadth = 2;
  // Probability (percent) that a content model admits ε.
  int epsilon_percent = 60;
  // Probability (percent) that a content model is a counted expression
  // u x{n,m} v compiled from a kRepeat regex (with provenance recorded in
  // content_source) instead of a finite word set. Honored by RandomEdtd
  // and RandomStEdtd.
  int repeat_percent = 0;
};

// A random *reduced* EDTD (non-empty language); retries internally until
// reduction leaves at least one type.
Edtd RandomEdtd(std::mt19937* rng, const RandomSchemaParams& params);

// A random reduced EDTD with an acyclic type graph and finite content
// models — the language is a finite tree set (depth <= num_types, width
// <= content_breadth). Unlike RandomNonRecursiveStEdtd this one is NOT
// constrained to be single-type, which makes it a workload for testing
// upper approximations against exact finite closures.
Edtd RandomFiniteEdtd(std::mt19937* rng, const RandomSchemaParams& params);

// A random reduced single-type EDTD (built as a random state-labeled DFA
// skeleton, so the single-type property holds by construction).
Edtd RandomStEdtd(std::mt19937* rng, const RandomSchemaParams& params);

// A random reduced single-type EDTD whose type graph is acyclic (a
// non-recursive schema in the sense of Observation 4.14): the language is
// depth-bounded by the number of types. When additionally
// `finite_language` is set, every content model is a finite word set, so
// L is a finite tree set — the setting of Section 4.4's decision
// procedures.
Edtd RandomNonRecursiveStEdtd(std::mt19937* rng,
                              const RandomSchemaParams& params,
                              bool finite_language = true);

// Samples a member of L(xsd), biased toward shallow trees; depth is capped
// by steering every content walk to acceptance once `max_depth` is
// reached. Returns nullopt only for the empty language.
std::optional<Tree> SampleTree(const DfaXsd& xsd, std::mt19937* rng,
                               int max_depth = 6);

// Exact-weight sampling: a uniform draw from the accepted trees with
// exactly `num_nodes` nodes, using size tables from BuildXsdSizeTables
// (count/counter.h) as cumulative weights — every choice (root symbol,
// child label, child subtree size) is made proportionally to the number
// of completions it admits, so all trees of the size are equally likely.
// Returns nullopt when no accepted tree has that size. Require: the
// tables were built for `xsd` and num_nodes <= tables.max_size.
std::optional<Tree> SampleTreeUniform(const DfaXsd& xsd,
                                      const XsdSizeTables& tables,
                                      int num_nodes, std::mt19937* rng);

// Random accepted word of `dfa`: random walk that switches to the shortest
// accepting continuation after `soft_length` steps. Returns nullopt for
// the empty language.
std::optional<Word> SampleWord(const Dfa& dfa, std::mt19937* rng,
                               int soft_length = 4);

// A random NFA workload for kernel property tests and benchmarks: one
// random initial state, ~30% final states (at least one), and
// `transitions_per_state` uniformly random edges per state.
Nfa RandomNfa(std::mt19937* rng, int num_states, int num_symbols,
              int transitions_per_state = 2);

}  // namespace stap

#endif  // STAP_GEN_RANDOM_H_
