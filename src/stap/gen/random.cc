#include "stap/gen/random.h"

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "stap/automata/minimize.h"
#include "stap/automata/ops.h"
#include "stap/base/check.h"
#include "stap/regex/ast.h"
#include "stap/regex/glushkov.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"

namespace stap {

namespace {

int Pick(std::mt19937* rng, int bound) {
  STAP_CHECK(bound > 0);
  return static_cast<int>((*rng)() % static_cast<uint32_t>(bound));
}

bool Chance(std::mt19937* rng, int percent) {
  return Pick(rng, 100) < percent;
}

// A counted content model  u x{n,m} v  (optionally | ε) over `allowed`,
// compiled through the Glushkov pipeline with its kRepeat provenance.
std::pair<Dfa, RegexPtr> RandomRepeatContent(std::mt19937* rng,
                                             int num_symbols,
                                             const std::vector<int>& allowed,
                                             int epsilon_percent) {
  STAP_CHECK(!allowed.empty());
  auto pick_symbol = [&] {
    return allowed[Pick(rng, static_cast<int>(allowed.size()))];
  };
  std::vector<RegexPtr> parts;
  if (Chance(rng, 40)) parts.push_back(Regex::Symbol(pick_symbol()));
  // Keep the bounds outside the shapes the Repeat factory folds into
  // ?/*/+ ({0,1}, {1,1}), so the content model carries a real kRepeat.
  const int min = Pick(rng, 3);
  const int max = min + (min == 0 ? 2 : 1) + Pick(rng, 3);
  parts.push_back(Regex::Repeat(Regex::Symbol(pick_symbol()), min, max));
  if (Chance(rng, 40)) parts.push_back(Regex::Symbol(pick_symbol()));
  RegexPtr regex = Regex::Concat(std::move(parts));
  if (Chance(rng, epsilon_percent)) {
    std::vector<RegexPtr> alternatives;
    alternatives.push_back(Regex::Epsilon());
    alternatives.push_back(std::move(regex));
    regex = Regex::Union(std::move(alternatives));
  }
  Dfa dfa = Minimize(RegexToDfa(*regex, num_symbols));
  return {std::move(dfa), std::move(regex)};
}

// Distance (in symbols) from every state to acceptance; -1 if none.
std::vector<int> DistanceToFinal(const Dfa& dfa) {
  std::vector<int> dist(dfa.num_states(), -1);
  std::deque<int> queue;
  for (int q = 0; q < dfa.num_states(); ++q) {
    if (dfa.IsFinal(q)) {
      dist[q] = 0;
      queue.push_back(q);
    }
  }
  // Reverse BFS.
  std::vector<std::vector<int>> reverse(dfa.num_states());
  for (int q = 0; q < dfa.num_states(); ++q) {
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int r = dfa.Next(q, a);
      if (r != kNoState) reverse[r].push_back(q);
    }
  }
  while (!queue.empty()) {
    int q = queue.front();
    queue.pop_front();
    for (int p : reverse[q]) {
      if (dist[p] < 0) {
        dist[p] = dist[q] + 1;
        queue.push_back(p);
      }
    }
  }
  return dist;
}

// Minimal witness trees per XSD state (bottom-up productivity fixpoint);
// absent entries are unproductive states.
std::vector<std::optional<Tree>> WitnessTrees(const DfaXsd& xsd) {
  const int n = xsd.automaton.num_states();
  const int num_symbols = xsd.sigma.size();
  std::vector<std::optional<Tree>> witness(n);
  bool changed = true;
  while (changed) {
    changed = false;
    for (int q = 1; q < n; ++q) {
      if (witness[q].has_value()) continue;
      // Restrict content[q] to symbols whose child state already has a
      // witness and take a shortest word.
      const Dfa& content = xsd.content[q];
      Dfa restricted(content.num_states(), num_symbols);
      if (content.num_states() == 0) continue;
      restricted.SetInitial(content.initial());
      for (int s = 0; s < content.num_states(); ++s) {
        if (content.IsFinal(s)) restricted.SetFinal(s);
        for (int a = 0; a < num_symbols; ++a) {
          int child_state = xsd.automaton.Next(q, a);
          if (child_state == kNoState || !witness[child_state].has_value()) {
            continue;
          }
          int r = content.Next(s, a);
          if (r != kNoState) restricted.SetTransition(s, a, r);
        }
      }
      Word word;
      if (!restricted.ShortestWord(&word)) continue;
      Tree tree(xsd.state_label[q]);
      for (int a : word) {
        tree.children.push_back(*witness[xsd.automaton.Next(q, a)]);
      }
      witness[q] = std::move(tree);
      changed = true;
    }
  }
  return witness;
}

Tree SampleAt(const DfaXsd& xsd, int state, int depth, int max_depth,
              const std::vector<std::optional<Tree>>& witness,
              std::mt19937* rng) {
  if (depth >= max_depth) return *witness[state];
  // Sample a child word that only uses productive child states.
  const Dfa& content = xsd.content[state];
  std::vector<bool> productive_symbol(xsd.sigma.size(), false);
  for (int a = 0; a < xsd.sigma.size(); ++a) {
    int child = xsd.automaton.Next(state, a);
    productive_symbol[a] = child != kNoState && witness[child].has_value();
  }
  Dfa restricted(content.num_states(), xsd.sigma.size());
  restricted.SetInitial(content.initial());
  for (int s = 0; s < content.num_states(); ++s) {
    if (content.IsFinal(s)) restricted.SetFinal(s);
    for (int a = 0; a < xsd.sigma.size(); ++a) {
      if (!productive_symbol[a]) continue;
      int r = content.Next(s, a);
      if (r != kNoState) restricted.SetTransition(s, a, r);
    }
  }
  std::optional<Word> word = SampleWord(restricted, rng, max_depth - depth);
  STAP_CHECK(word.has_value());  // state is productive
  Tree tree(xsd.state_label[state]);
  for (int a : *word) {
    tree.children.push_back(SampleAt(xsd, xsd.automaton.Next(state, a),
                                     depth + 1, max_depth, witness, rng));
  }
  return tree;
}

}  // namespace

Nfa RandomNfa(std::mt19937* rng, int num_states, int num_symbols,
              int transitions_per_state) {
  STAP_CHECK(num_states >= 1 && num_symbols >= 1);
  STAP_CHECK(transitions_per_state >= 0);
  Nfa nfa(num_states, num_symbols);
  nfa.AddInitial(Pick(rng, num_states));
  for (int q = 0; q < num_states; ++q) {
    if (Chance(rng, 30)) nfa.SetFinal(q);
    for (int i = 0; i < transitions_per_state; ++i) {
      nfa.AddTransition(q, Pick(rng, num_symbols), Pick(rng, num_states));
    }
  }
  nfa.SetFinal(Pick(rng, num_states));  // the language must be inhabited
  return nfa;
}

std::optional<Word> SampleWord(const Dfa& dfa, std::mt19937* rng,
                               int soft_length) {
  if (dfa.num_states() == 0) return std::nullopt;
  std::vector<int> dist = DistanceToFinal(dfa);
  if (dist[dfa.initial()] < 0) return std::nullopt;
  Word word;
  int state = dfa.initial();
  while (true) {
    bool must_shorten = static_cast<int>(word.size()) >= soft_length;
    if (dfa.IsFinal(state) && (must_shorten || Chance(rng, 40))) return word;
    // Candidate transitions that can still reach acceptance; under the
    // soft cap, only those that strictly decrease the distance.
    std::vector<int> candidates;
    for (int a = 0; a < dfa.num_symbols(); ++a) {
      int r = dfa.Next(state, a);
      if (r == kNoState || dist[r] < 0) continue;
      if (must_shorten && dist[r] >= dist[state]) continue;
      candidates.push_back(a);
    }
    if (candidates.empty()) {
      STAP_CHECK(dfa.IsFinal(state));  // dist == 0 and no shrinking move
      return word;
    }
    int a = candidates[Pick(rng, static_cast<int>(candidates.size()))];
    word.push_back(a);
    state = dfa.Next(state, a);
  }
}

namespace {

Tree SampleUniformAt(const DfaXsd& xsd, const XsdSizeTables& tables, int q,
                     int size, std::mt19937* rng);

// Extends `out` with a forest of total size r completing content[q] from
// state cs, each completion drawn with probability 1 / forests[q][cs][r].
void SampleUniformForest(const DfaXsd& xsd, const XsdSizeTables& tables,
                         int q, int cs, int r, std::mt19937* rng,
                         std::vector<Tree>* out) {
  if (r == 0) return;  // the empty forest is the only size-0 completion
  const Dfa& content = xsd.content[q];
  BigNat target = BigNat::RandomBelow(tables.forests[q][cs][r], rng);
  BigNat acc;
  for (int a = 0; a < xsd.sigma.size(); ++a) {
    const int cs_next = content.Next(cs, a);
    const int child = xsd.automaton.Next(q, a);
    if (cs_next == kNoState || child == kNoState) continue;
    for (int k = 1; k <= r; ++k) {
      const BigNat& head = tables.trees[child][k];
      const BigNat& rest = tables.forests[q][cs_next][r - k];
      if (head.IsZero() || rest.IsZero()) continue;
      acc = BigNat::Add(acc, BigNat::Mul(head, rest));
      if (BigNat::Compare(target, acc) < 0) {
        out->push_back(SampleUniformAt(xsd, tables, child, k, rng));
        SampleUniformForest(xsd, tables, q, cs_next, r - k, rng, out);
        return;
      }
    }
  }
  STAP_CHECK(false);  // the (a, k) weights sum to forests[q][cs][r]
}

Tree SampleUniformAt(const DfaXsd& xsd, const XsdSizeTables& tables, int q,
                     int size, std::mt19937* rng) {
  Tree tree(xsd.state_label[q]);
  SampleUniformForest(xsd, tables, q, xsd.content[q].initial(), size - 1,
                      rng, &tree.children);
  return tree;
}

}  // namespace

std::optional<Tree> SampleTreeUniform(const DfaXsd& xsd,
                                      const XsdSizeTables& tables,
                                      int num_nodes, std::mt19937* rng) {
  STAP_CHECK(num_nodes >= 0 && num_nodes <= tables.max_size);
  if (num_nodes == 0 || tables.totals[num_nodes].IsZero()) {
    return std::nullopt;
  }
  BigNat target = BigNat::RandomBelow(tables.totals[num_nodes], rng);
  BigNat acc;
  for (int a : xsd.start_symbols) {
    const int q = xsd.automaton.Next(xsd.automaton.initial(), a);
    if (q == kNoState) continue;
    acc = BigNat::Add(acc, tables.trees[q][num_nodes]);
    if (BigNat::Compare(target, acc) < 0) {
      return SampleUniformAt(xsd, tables, q, num_nodes, rng);
    }
  }
  STAP_CHECK(false);  // per-root weights sum to totals[num_nodes]
  return std::nullopt;
}

std::optional<Tree> SampleTree(const DfaXsd& xsd, std::mt19937* rng,
                               int max_depth) {
  std::vector<std::optional<Tree>> witness = WitnessTrees(xsd);
  std::vector<int> roots;
  for (int a : xsd.start_symbols) {
    int q = xsd.automaton.Next(xsd.automaton.initial(), a);
    if (q != kNoState && witness[q].has_value()) roots.push_back(q);
  }
  if (roots.empty()) return std::nullopt;
  int root = roots[Pick(rng, static_cast<int>(roots.size()))];
  return SampleAt(xsd, root, 1, std::max(max_depth, 1), witness, rng);
}

Edtd RandomEdtd(std::mt19937* rng, const RandomSchemaParams& params) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    Edtd edtd;
    for (int a = 0; a < params.num_symbols; ++a) {
      edtd.sigma.Intern(std::string(1, static_cast<char>('a' + a)));
    }
    for (int tau = 0; tau < params.num_types; ++tau) {
      edtd.types.Intern("t" + std::to_string(tau));
      edtd.mu.push_back(Pick(rng, params.num_symbols));
    }
    if (params.repeat_percent > 0) {
      edtd.content_source.assign(params.num_types, nullptr);
    }
    std::vector<int> all_types(params.num_types);
    for (int tau = 0; tau < params.num_types; ++tau) all_types[tau] = tau;
    for (int tau = 0; tau < params.num_types; ++tau) {
      if (params.repeat_percent > 0 && Chance(rng, params.repeat_percent)) {
        auto [dfa, regex] = RandomRepeatContent(
            rng, params.num_types, all_types, params.epsilon_percent);
        edtd.content.push_back(std::move(dfa));
        edtd.content_source[tau] = std::move(regex);
        continue;
      }
      // Content: a few random words over random types.
      std::vector<Word> words;
      if (Chance(rng, params.epsilon_percent)) words.push_back({});
      int num_words = 1 + Pick(rng, 2);
      for (int w = 0; w < num_words; ++w) {
        Word word;
        int length = 1 + Pick(rng, params.content_breadth);
        for (int i = 0; i < length; ++i) {
          word.push_back(Pick(rng, params.num_types));
        }
        words.push_back(std::move(word));
      }
      edtd.content.push_back(
          Minimize(Dfa::FromWords(words, params.num_types)));
    }
    int num_starts = 1 + Pick(rng, 2);
    for (int s = 0; s < num_starts; ++s) {
      StateSetInsert(edtd.start_types, Pick(rng, params.num_types));
    }
    Edtd reduced = ReduceEdtd(edtd);
    if (reduced.num_types() > 0) return reduced;
  }
  // Fall back to a trivial non-empty schema.
  Edtd edtd;
  edtd.sigma.Intern("a");
  edtd.types.Intern("t0");
  edtd.mu.push_back(0);
  edtd.content.push_back(Dfa::EpsilonOnly(1));
  edtd.start_types.push_back(0);
  return edtd;
}

Edtd RandomFiniteEdtd(std::mt19937* rng, const RandomSchemaParams& params) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    Edtd edtd;
    for (int a = 0; a < params.num_symbols; ++a) {
      edtd.sigma.Intern(std::string(1, static_cast<char>('a' + a)));
    }
    const int n = params.num_types;
    for (int tau = 0; tau < n; ++tau) {
      edtd.types.Intern("t" + std::to_string(tau));
      edtd.mu.push_back(Pick(rng, params.num_symbols));
    }
    for (int tau = 0; tau < n; ++tau) {
      // Content words reference only strictly higher type ids (DAG).
      std::vector<Word> words;
      if (tau == n - 1 || Chance(rng, params.epsilon_percent)) {
        words.push_back({});
      }
      if (tau < n - 1) {
        int num_words = 1 + Pick(rng, 2);
        for (int w = 0; w < num_words; ++w) {
          Word word;
          int length = 1 + Pick(rng, params.content_breadth);
          for (int i = 0; i < length; ++i) {
            word.push_back(tau + 1 + Pick(rng, n - tau - 1));
          }
          words.push_back(std::move(word));
        }
      }
      edtd.content.push_back(Minimize(Dfa::FromWords(words, n)));
    }
    int num_starts = 1 + Pick(rng, 2);
    for (int s = 0; s < num_starts; ++s) {
      StateSetInsert(edtd.start_types, Pick(rng, std::max(1, n / 2)));
    }
    Edtd reduced = ReduceEdtd(edtd);
    if (reduced.num_types() > 0) return reduced;
  }
  Edtd edtd;
  edtd.sigma.Intern("a");
  edtd.types.Intern("t0");
  edtd.mu.push_back(0);
  edtd.content.push_back(Dfa::EpsilonOnly(1));
  edtd.start_types.push_back(0);
  return edtd;
}

Edtd RandomNonRecursiveStEdtd(std::mt19937* rng,
                              const RandomSchemaParams& params,
                              bool finite_language) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int num_symbols = params.num_symbols;
    const int num_states = params.num_types + 1;  // with q_init

    DfaXsd xsd;
    for (int a = 0; a < num_symbols; ++a) {
      xsd.sigma.Intern(std::string(1, static_cast<char>('a' + a)));
    }
    xsd.automaton = Dfa(num_states, num_symbols);
    xsd.automaton.SetInitial(0);
    xsd.state_label.assign(num_states, kNoSymbol);
    for (int q = 1; q < num_states; ++q) {
      xsd.state_label[q] = Pick(rng, num_symbols);
    }
    // Acyclic skeleton: transitions only go from lower to strictly higher
    // state ids, so the type graph is a DAG.
    for (int q = 1; q < num_states; ++q) {
      int parent = Pick(rng, q);
      xsd.automaton.SetTransition(parent, xsd.state_label[q], q);
    }
    for (int q = 0; q < num_states; ++q) {
      for (int a = 0; a < num_symbols; ++a) {
        if (xsd.automaton.Next(q, a) != kNoState || !Chance(rng, 30)) {
          continue;
        }
        std::vector<int> candidates;
        for (int r = q + 1; r < num_states; ++r) {
          if (xsd.state_label[r] == a) candidates.push_back(r);
        }
        if (!candidates.empty()) {
          xsd.automaton.SetTransition(
              q, a,
              candidates[Pick(rng, static_cast<int>(candidates.size()))]);
        }
      }
    }
    for (int a = 0; a < num_symbols; ++a) {
      if (xsd.automaton.Next(xsd.automaton.initial(), a) != kNoState) {
        StateSetInsert(xsd.start_symbols, a);
      }
    }
    xsd.content.resize(num_states, Dfa::EmptyLanguage(num_symbols));
    for (int q = 1; q < num_states; ++q) {
      std::vector<int> allowed;
      for (int a = 0; a < num_symbols; ++a) {
        if (xsd.automaton.Next(q, a) != kNoState) allowed.push_back(a);
      }
      std::vector<Word> words;
      if (allowed.empty() || Chance(rng, params.epsilon_percent)) {
        words.push_back({});
      }
      if (!allowed.empty()) {
        int num_words = 1 + Pick(rng, 2);
        for (int w = 0; w < num_words; ++w) {
          Word word;
          int length = 1 + Pick(rng, params.content_breadth);
          for (int i = 0; i < length; ++i) {
            word.push_back(
                allowed[Pick(rng, static_cast<int>(allowed.size()))]);
          }
          words.push_back(std::move(word));
        }
      }
      Dfa content = Minimize(Dfa::FromWords(words, num_symbols));
      if (!finite_language && !allowed.empty() && Chance(rng, 30)) {
        // Allow unbounded repetition of one child label while keeping the
        // DAG type structure (depth stays bounded, width does not).
        int a = allowed[Pick(rng, static_cast<int>(allowed.size()))];
        Nfa star(1, num_symbols);
        star.AddInitial(0);
        star.SetFinal(0);
        star.AddTransition(0, a, 0);
        content = MinimizeNfa(NfaUnion(content.ToNfa(), star));
      }
      xsd.content[q] = content;
    }
    xsd.CheckWellFormed();
    Edtd reduced = ReduceEdtd(StEdtdFromDfaXsd(xsd));
    if (reduced.num_types() > 0) return reduced;
  }
  Edtd edtd;
  edtd.sigma.Intern("a");
  edtd.types.Intern("t0");
  edtd.mu.push_back(0);
  edtd.content.push_back(Dfa::EpsilonOnly(1));
  edtd.start_types.push_back(0);
  return edtd;
}

Edtd RandomStEdtd(std::mt19937* rng, const RandomSchemaParams& params) {
  for (int attempt = 0; attempt < 200; ++attempt) {
    const int num_symbols = params.num_symbols;
    const int num_states = params.num_types + 1;  // with q_init

    DfaXsd xsd;
    for (int a = 0; a < num_symbols; ++a) {
      xsd.sigma.Intern(std::string(1, static_cast<char>('a' + a)));
    }
    xsd.automaton = Dfa(num_states, num_symbols);
    xsd.automaton.SetInitial(0);
    xsd.state_label.assign(num_states, kNoSymbol);
    for (int q = 1; q < num_states; ++q) {
      xsd.state_label[q] = Pick(rng, num_symbols);
    }
    // Spanning structure for reachability (never targeting q_init), then
    // extra random edges; state-labeledness is maintained throughout.
    for (int q = 1; q < num_states; ++q) {
      int parent = Pick(rng, q);  // 0..q-1
      xsd.automaton.SetTransition(parent, xsd.state_label[q], q);
    }
    for (int q = 0; q < num_states; ++q) {
      for (int a = 0; a < num_symbols; ++a) {
        if (xsd.automaton.Next(q, a) != kNoState || !Chance(rng, 30)) {
          continue;
        }
        std::vector<int> candidates;
        for (int r = 1; r < num_states; ++r) {
          if (xsd.state_label[r] == a) candidates.push_back(r);
        }
        if (!candidates.empty()) {
          xsd.automaton.SetTransition(
              q, a, candidates[Pick(rng, static_cast<int>(candidates.size()))]);
        }
      }
    }
    for (int a = 0; a < num_symbols; ++a) {
      if (xsd.automaton.Next(xsd.automaton.initial(), a) != kNoState) {
        StateSetInsert(xsd.start_symbols, a);
      }
    }
    // Content models over the locally available labels.
    xsd.content.resize(num_states, Dfa::EmptyLanguage(num_symbols));
    if (params.repeat_percent > 0) {
      xsd.content_source.assign(num_states, nullptr);
    }
    for (int q = 1; q < num_states; ++q) {
      std::vector<int> allowed;
      for (int a = 0; a < num_symbols; ++a) {
        if (xsd.automaton.Next(q, a) != kNoState) allowed.push_back(a);
      }
      if (!allowed.empty() && params.repeat_percent > 0 &&
          Chance(rng, params.repeat_percent)) {
        auto [dfa, regex] = RandomRepeatContent(rng, num_symbols, allowed,
                                                params.epsilon_percent);
        xsd.content[q] = std::move(dfa);
        xsd.content_source[q] = std::move(regex);
        continue;
      }
      std::vector<Word> words;
      if (allowed.empty() || Chance(rng, params.epsilon_percent)) {
        words.push_back({});
      }
      if (!allowed.empty()) {
        int num_words = 1 + Pick(rng, 2);
        for (int w = 0; w < num_words; ++w) {
          Word word;
          int length = 1 + Pick(rng, params.content_breadth);
          for (int i = 0; i < length; ++i) {
            word.push_back(allowed[Pick(rng,
                                        static_cast<int>(allowed.size()))]);
          }
          words.push_back(std::move(word));
        }
      }
      xsd.content[q] = Minimize(Dfa::FromWords(words, num_symbols));
    }
    xsd.CheckWellFormed();
    Edtd reduced = ReduceEdtd(StEdtdFromDfaXsd(xsd));
    if (reduced.num_types() > 0) return reduced;
  }
  Edtd edtd;
  edtd.sigma.Intern("a");
  edtd.types.Intern("t0");
  edtd.mu.push_back(0);
  edtd.content.push_back(Dfa::EpsilonOnly(1));
  edtd.start_types.push_back(0);
  return edtd;
}

}  // namespace stap
