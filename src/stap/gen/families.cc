#include "stap/gen/families.h"

#include <string>

#include "stap/base/check.h"
#include "stap/regex/glushkov.h"
#include "stap/schema/builder.h"

namespace stap {

Edtd UnaryEdtdFromRegex(const Regex& regex, const Alphabet& sigma) {
  // The Glushkov automaton is state-labeled: position states become types
  // whose μ is the position's symbol; a unary tree spells a word top-down.
  Nfa glushkov = GlushkovAutomaton(regex, sigma.size());

  Edtd edtd;
  edtd.sigma = sigma;
  const int positions = glushkov.num_states() - 1;  // state 0 is initial
  // Determine each position's symbol from its (unique) incoming label.
  std::vector<int> position_symbol(positions + 1, kNoSymbol);
  for (int q = 0; q <= positions; ++q) {
    for (int a = 0; a < sigma.size(); ++a) {
      for (int r : glushkov.Next(q, a)) {
        STAP_CHECK(position_symbol[r] == kNoSymbol ||
                   position_symbol[r] == a);
        position_symbol[r] = a;
      }
    }
  }
  for (int p = 1; p <= positions; ++p) {
    STAP_CHECK(position_symbol[p] != kNoSymbol);  // regex is trim
    edtd.types.Intern("pos" + std::to_string(p));
    edtd.mu.push_back(position_symbol[p]);
  }
  // Content of position p: exactly one child typed by a follow position,
  // or ε when p is a Glushkov final state.
  for (int p = 1; p <= positions; ++p) {
    Dfa content(2, positions);
    content.SetFinal(1);
    if (glushkov.IsFinal(p)) content.SetFinal(0);
    for (int a = 0; a < sigma.size(); ++a) {
      for (int r : glushkov.Next(p, a)) {
        content.SetTransition(0, r - 1, 1);
      }
    }
    edtd.content.push_back(std::move(content));
  }
  for (int a = 0; a < sigma.size(); ++a) {
    for (int r : glushkov.Next(0, a)) {
      StateSetInsert(edtd.start_types, r - 1);
    }
  }
  edtd.CheckWellFormed();
  return edtd;
}

Edtd Theorem32Family(int n) {
  STAP_CHECK(n >= 1);
  // (a+b)* a (a+b)^n over the unary-tree encoding.
  Alphabet sigma({"a", "b"});
  RegexPtr ab = Regex::Union({Regex::Symbol(0), Regex::Symbol(1)});
  std::vector<RegexPtr> parts;
  parts.push_back(Regex::Star(ab));
  parts.push_back(Regex::Symbol(0));
  for (int i = 0; i < n; ++i) parts.push_back(ab);
  return UnaryEdtdFromRegex(*Regex::Concat(std::move(parts)), sigma);
}

std::pair<Edtd, Edtd> Theorem36Family(int n) {
  STAP_CHECK(n >= 1);
  // D1: unary trees with at most n a-labeled nodes. τa_i / τb_i track the
  // number of a's consumed so far.
  auto build = [n](const std::string& heavy, const std::string& light) {
    SchemaBuilder builder;
    // H_i: a heavy node that is the (i+1)-th heavy one on the path
    // (declared for i < n); L_i: a light node below i heavy ones.
    for (int i = 0; i < n; ++i) {
      std::string content = "L" + std::to_string(i + 1) + " | %";
      if (i + 1 < n) content = "H" + std::to_string(i + 1) + " | " + content;
      builder.AddType("H" + std::to_string(i), heavy, content);
    }
    for (int i = 0; i <= n; ++i) {
      std::string content = "L" + std::to_string(i) + " | %";
      if (i < n) content = "H" + std::to_string(i) + " | " + content;
      builder.AddType("L" + std::to_string(i), light, content);
    }
    builder.AddStart("H0");
    builder.AddStart("L0");
    return builder.Build();
  };
  return {build("a", "b"), build("b", "a")};
}

namespace {

bool IsPrime(int value) {
  if (value < 2) return false;
  for (int d = 2; d * d <= value; ++d) {
    if (value % d == 0) return false;
  }
  return true;
}

int NextPrime(int value) {
  int candidate = value + 1;
  while (!IsPrime(candidate)) ++candidate;
  return candidate;
}

Edtd CyclicChainSchema(int period) {
  SchemaBuilder builder;
  for (int i = 0; i < period; ++i) {
    std::string next = "C" + std::to_string((i + 1) % period);
    std::string content = i == period - 1 ? next + " | %" : next;
    builder.AddType("C" + std::to_string(i), "a", content);
  }
  builder.AddStart("C0");
  return builder.Build();
}

}  // namespace

std::pair<Edtd, Edtd> Theorem38Family(int n) {
  STAP_CHECK(n >= 1);
  int p1 = NextPrime(n);
  int p2 = NextPrime(p1);
  return {CyclicChainSchema(p1), CyclicChainSchema(p2)};
}

std::pair<Edtd, Edtd> Theorem43Schemas() {
  SchemaBuilder d1;
  d1.AddType("A", "a", "A | B");
  d1.AddType("B", "b", "%");
  d1.AddStart("A");

  SchemaBuilder d2;
  d2.AddType("A", "a", "A | A A | %");
  d2.AddStart("A");
  return {d1.Build(), d2.Build()};
}

Edtd Theorem43LowerApproximation(int n) {
  STAP_CHECK(n >= 1);
  SchemaBuilder builder;
  for (int i = 0; i < n - 1; ++i) {
    builder.AddType("A" + std::to_string(i), "a",
                    "A" + std::to_string(i + 1) + " | B | %");
  }
  std::string an = "A" + std::to_string(n);
  builder.AddType("A" + std::to_string(n - 1), "a",
                  an + " | " + an + " " + an + " | B | %");
  builder.AddType(an, "a", an + " | " + an + " " + an + " | %");
  builder.AddType("B", "b", "%");
  builder.AddStart("A0");
  return builder.Build();
}

Edtd Theorem411Dtd() {
  SchemaBuilder builder;
  builder.AddType("A", "a", "A | %");
  builder.AddStart("A");
  return builder.Build();
}

Edtd Theorem411LowerApproximation(int n) {
  STAP_CHECK(n >= 1);
  SchemaBuilder builder;
  // Unary spine down to depth n, a branching node (>= 2 children) at
  // depth n, arbitrary a-trees below.
  for (int i = 1; i < n; ++i) {
    builder.AddType("X" + std::to_string(i), "a", "X" + std::to_string(i + 1));
  }
  std::string deep = "X" + std::to_string(n + 1);
  builder.AddType("X" + std::to_string(n), "a", deep + " " + deep + "+");
  builder.AddType(deep, "a", deep + "*");
  builder.AddStart("X1");
  return builder.Build();
}

Edtd Example26Edtd() {
  SchemaBuilder builder;
  builder.AddType("t1", "a", "t1 | t2x");
  builder.AddType("t2x", "b", "t2y | %");
  builder.AddType("t2y", "b", "t1 | t2y | %");
  builder.AddStart("t1");
  return builder.Build();
}

Edtd CountedFamily(int min_items, int max_items) {
  STAP_CHECK(min_items >= 0);
  STAP_CHECK(max_items >= min_items);
  STAP_CHECK(max_items >= 1);
  SchemaBuilder builder;
  builder.AddType("Doc", "doc",
                  "Header Item{" + std::to_string(min_items) + "," +
                      std::to_string(max_items) + "} Footer?");
  builder.AddType("Header", "header", "%");
  builder.AddType("Item", "item", "Field{1,3}");
  builder.AddType("Field", "field", "%");
  builder.AddType("Footer", "footer", "%");
  builder.AddStart("Doc");
  return builder.Build();
}

Nfa BoundedLetterContext(int symbol, int max_count, int num_symbols) {
  STAP_CHECK(symbol >= 0 && symbol < num_symbols);
  STAP_CHECK(max_count >= 0);
  // State i = "i occurrences of `symbol` seen"; all states final, the
  // (max_count+1)-th occurrence has no transition (dead).
  Nfa nfa(max_count + 1, num_symbols);
  nfa.AddInitial(0);
  for (int i = 0; i <= max_count; ++i) {
    nfa.SetFinal(i);
    for (int a = 0; a < num_symbols; ++a) {
      if (a == symbol) {
        if (i < max_count) nfa.AddTransition(i, a, i + 1);
      } else {
        nfa.AddTransition(i, a, i);
      }
    }
  }
  return nfa;
}

}  // namespace stap
