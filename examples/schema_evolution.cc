// Schema-evolution scenario: version 2 of a schema extends version 1;
// the maintainers want (a) the set of documents *newly admitted* by v2
// (difference, Theorem 3.10), (b) a check that v2 really is backward
// compatible (inclusion, Lemma 3.3), and (c) the minimal canonical form
// of the published schema ([20]).
#include <iostream>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper_boolean.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/text_format.h"
#include "stap/tree/xml.h"

int main() {
  using namespace stap;  // NOLINT: example brevity

  // v1: an order has a customer and one or more items.
  SchemaBuilder v1;
  v1.AddType("Order", "order", "Customer Item+");
  v1.AddType("Customer", "customer", "%");
  v1.AddType("Item", "item", "Sku Qty");
  v1.AddType("Sku", "sku", "%");
  v1.AddType("Qty", "qty", "%");
  v1.AddStart("Order");

  // v2: items may carry a discount, and the order may end with a note.
  SchemaBuilder v2;
  v2.AddType("Order", "order", "Customer Item+ Note?");
  v2.AddType("Customer", "customer", "%");
  v2.AddType("Item", "item", "Sku Qty Discount?");
  v2.AddType("Sku", "sku", "%");
  v2.AddType("Qty", "qty", "%");
  v2.AddType("Discount", "discount", "%");
  v2.AddType("Note", "note", "%");
  v2.AddStart("Order");

  Edtd schema_v1 = v1.Build();
  Edtd schema_v2 = v2.Build();

  // (b) Backward compatibility: every v1 document validates under v2.
  std::cout << "v1 ⊆ v2 (backward compatible): "
            << (IncludedInSingleType(schema_v1, schema_v2) ? "yes" : "no")
            << "\n";
  std::cout << "v2 ⊆ v1 (no new documents): "
            << (IncludedInSingleType(schema_v2, schema_v1) ? "yes" : "no")
            << "\n\n";

  // (a) What is new in v2? The difference v2 \ v1 is generally not an
  // XSD; publish its minimal upper approximation (Theorem 3.10).
  DfaXsd whats_new = MinimizeXsd(UpperDifference(schema_v2, schema_v1));
  std::cout << "Upper approximation of (v2 \\ v1), "
            << whats_new.type_size() << " types:\n"
            << SchemaToText(StEdtdFromDfaXsd(whats_new)) << "\n";

  Alphabet alphabet = whats_new.sigma;
  const char* documents[] = {
      // Unchanged v1 document: NOT in the difference.
      "<order><customer/><item><sku/><qty/></item></order>",
      // Uses a discount: new in v2.
      "<order><customer/><item><sku/><qty/><discount/></item></order>",
      // Uses a note: new in v2.
      "<order><customer/><item><sku/><qty/></item><note/></order>",
  };
  for (const char* source : documents) {
    Tree doc = *ParseXml(source, &alphabet);
    std::cout << (whats_new.Accepts(doc) ? "NEW      " : "existing ")
              << source << "\n";
  }

  // (c) Canonical minimal form of the published v2 schema.
  DfaXsd minimal =
      MinimizeXsd(DfaXsdFromStEdtd(ReduceEdtd(schema_v2)));
  std::cout << "\nCanonical v2 schema (" << minimal.type_size()
            << " types):\n"
            << SchemaToText(StEdtdFromDfaXsd(minimal));
  return 0;
}
