// A guided tour of the paper's core mechanics on a tiny example:
//   1. why a union of XSDs fails EDC (Figure 1's subtree exchange),
//   2. the closure fixpoint and a derivation-tree witness (Lemma 2.17),
//   3. the type automaton and its determinization (Construction 3.1),
//   4. the resulting minimal upper approximation and its overhead,
//   5. the maximal lower approximation fixing one disjunct (Theorem 4.8).
#include <iostream>

#include "stap/approx/closure.h"
#include "stap/approx/nv.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/automata/dot.h"
#include "stap/schema/builder.h"
#include "stap/schema/count.h"
#include "stap/schema/minimize.h"
#include "stap/schema/text_format.h"
#include "stap/schema/type_automaton.h"

int main() {
  using namespace stap;  // NOLINT: example brevity

  // Two one-document schemas with sibling structure.
  auto make = [](const std::string& leaf) {
    SchemaBuilder builder;
    builder.AddType("R", "r", "X Y");
    builder.AddType("X", "x", "Leaf");
    builder.AddType("Y", "y", "Leaf");
    builder.AddType("Leaf", leaf, "%");
    builder.AddStart("R");
    return builder.Build();
  };
  Edtd d1 = make("a");
  Edtd d2 = make("b");
  auto [a1, a2] = AlignAlphabets(d1, d2);
  Alphabet& s = a1.sigma;
  int r = s.Find("r"), x = s.Find("x"), y = s.Find("y"), a = s.Find("a"),
      b = s.Find("b");

  std::cout << "== 1. The union escapes EDC =====================\n";
  Tree doc_a(r, {Tree(x, {Tree(a)}), Tree(y, {Tree(a)})});
  Tree doc_b(r, {Tree(x, {Tree(b)}), Tree(y, {Tree(b)})});
  std::cout << "L(D1) = { " << doc_a.ToString(s) << " }\n"
            << "L(D2) = { " << doc_b.ToString(s) << " }\n";
  Tree mixed = AncestorGuardedExchange(doc_a, {1}, doc_b, {1});
  std::cout << "Exchanging the y-subtrees (equal ancestor string r.y):\n  "
            << mixed.ToString(s)
            << "  <- in NEITHER language, yet forced into any XSD\n\n";

  std::cout << "== 2. Closure and derivation trees ==============\n";
  ClosureResult closure = CloseUnderExchange({doc_a, doc_b});
  std::cout << "closure(L(D1) ∪ L(D2)) has " << closure.trees.size()
            << " documents:\n";
  for (size_t i = 0; i < closure.trees.size(); ++i) {
    DerivationTree derivation = BuildDerivation(closure, static_cast<int>(i));
    std::cout << "  " << closure.trees[i].ToString(s)
              << "   (derivation height " << derivation.Height() << ")\n";
  }
  std::cout << "\n";

  std::cout << "== 3. Type automaton of the union ===============\n";
  Edtd union_edtd = EdtdUnion(a1, a2);
  TypeAutomaton automaton = BuildTypeAutomaton(union_edtd);
  std::cout << "Nondeterministic (two leaf types per path), "
            << automaton.nfa.num_states() << " states. DOT:\n"
            << NfaToDot(automaton.nfa, &s) << "\n";

  std::cout << "== 4. Minimal upper approximation ===============\n";
  DfaXsd upper = MinimizeXsd(MinimalUpperApproximation(union_edtd));
  std::cout << SchemaToText(StEdtdFromDfaXsd(upper));
  double union_count = 2.0;
  double upper_count = CountDocuments(upper, 3, 2);
  std::cout << "documents (depth<=3): union " << union_count
            << ", approximation " << upper_count << " -> overhead "
            << (upper_count - union_count) << "\n\n";

  std::cout << "== 5. Maximal lower approximation (fixing D1) ===\n";
  DfaXsd lower = LowerUnionFixingFirst(a1, a2);
  std::cout << SchemaToText(StEdtdFromDfaXsd(lower));
  std::cout << "keeps D1: " << (lower.Accepts(doc_a) ? "yes" : "no")
            << ", keeps D2's document: "
            << (lower.Accepts(doc_b) ? "yes" : "no")
            << " (violating: exchanging it would escape the union)\n";
  return 0;
}
