// Data-integration scenario (the paper's introduction): two library
// branches publish XSDs; the integrated feed must carry documents from
// both, so we need a single XSD containing the union — the minimal upper
// approximation (Theorem 3.6). The example shows which "error" documents
// (outside the true union) the approximation is forced to admit, and
// exhibits the ancestor-guarded exchange derivation that forces them.
#include <iostream>

#include "stap/approx/closure.h"
#include "stap/approx/upper_boolean.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/single_type.h"
#include "stap/schema/validate.h"
#include "stap/tree/enumerate.h"
#include "stap/tree/xml.h"

int main() {
  using namespace stap;  // NOLINT: example brevity

  // Branch A: every book record carries an ISBN and a paper format.
  SchemaBuilder branch_a;
  branch_a.AddType("Cat", "catalog", "Book*");
  branch_a.AddType("Book", "book", "Isbn Format");
  branch_a.AddType("Isbn", "isbn", "%");
  branch_a.AddType("Format", "format", "Paper");
  branch_a.AddType("Paper", "paper", "%");
  branch_a.AddStart("Cat");

  // Branch B: digital-only catalog; books have a DOI and an ebook format.
  SchemaBuilder branch_b;
  branch_b.AddType("Cat", "catalog", "Book*");
  branch_b.AddType("Book", "book", "Doi Format");
  branch_b.AddType("Doi", "doi", "%");
  branch_b.AddType("Format", "format", "Ebook");
  branch_b.AddType("Ebook", "ebook", "%");
  branch_b.AddStart("Cat");

  Edtd d1 = branch_a.Build();
  Edtd d2 = branch_b.Build();
  DfaXsd merged = MinimizeXsd(UpperUnion(d1, d2));
  std::cout << "Integrated XSD has " << merged.type_size() << " types.\n\n";

  // Diagnose a malformed feed entry.
  Alphabet alphabet = merged.sigma;
  StatusOr<Tree> bad = ParseXml(
      "<catalog><book><isbn/></book></catalog>", &alphabet);
  ValidationResult diagnosis = ValidateWithDiagnostics(merged, *bad);
  std::cout << "Malformed entry: " << diagnosis.message << "\n\n";

  // The price of EDC: the merged schema accepts "chimeras" mixing an ISBN
  // with an ebook format. Show that such documents are *forced*: they
  // arise from members of the two branches by ancestor-guarded subtree
  // exchange (Figure 1), so every XSD containing both branches accepts
  // them.
  auto [a1, a2] = AlignAlphabets(d1, d2);
  int catalog = merged.sigma.Find("catalog"), book = merged.sigma.Find("book"),
      isbn = merged.sigma.Find("isbn"), fmt = merged.sigma.Find("format"),
      ebook = merged.sigma.Find("ebook");
  Tree chimera(catalog,
               {Tree(book, {Tree(isbn), Tree(fmt, {Tree(ebook)})})});
  std::cout << "Chimera document:\n" << ToXml(chimera, merged.sigma);
  std::cout << "in branch A: " << (a1.Accepts(chimera) ? "yes" : "no")
            << ", in branch B: " << (a2.Accepts(chimera) ? "yes" : "no")
            << ", in merged XSD: " << (merged.Accepts(chimera) ? "yes" : "no")
            << "\n\n";

  // Derivation witness: close the two pure documents under exchange and
  // show the chimera with its derivation tree height.
  Tree pure_a = *ParseXml(
      "<catalog><book><isbn/><format><paper/></format></book></catalog>",
      &alphabet);
  Tree pure_b = *ParseXml(
      "<catalog><book><doi/><format><ebook/></format></book></catalog>",
      &alphabet);
  ClosureResult closure = CloseUnderExchange({pure_a, pure_b});
  for (size_t i = 0; i < closure.trees.size(); ++i) {
    if (closure.trees[i] == chimera) {
      DerivationTree derivation = BuildDerivation(closure, static_cast<int>(i));
      std::cout << "Chimera derived from " << derivation.NumLeaves()
                << " branch documents in a derivation tree of height "
                << derivation.Height() << ".\n";
    }
  }

  // Quantify the error rate: enumerate catalogs of up to two books where
  // each book combines an identifier (isbn/doi) with a format
  // (paper/ebook) and count how many the merged schema admits beyond the
  // true union.
  int doi = merged.sigma.Find("doi"), paper = merged.sigma.Find("paper");
  std::vector<Tree> books;
  for (int id : {isbn, doi}) {
    for (int inner : {paper, ebook}) {
      books.push_back(Tree(book, {Tree(id), Tree(fmt, {Tree(inner)})}));
    }
  }
  int in_union = 0, in_merged = 0, total = 0;
  std::vector<Tree> catalogs = {Tree(catalog)};
  for (const Tree& b1_doc : books) {
    catalogs.push_back(Tree(catalog, {b1_doc}));
    for (const Tree& b2_doc : books) {
      catalogs.push_back(Tree(catalog, {b1_doc, b2_doc}));
    }
  }
  for (const Tree& doc : catalogs) {
    ++total;
    if (a1.Accepts(doc) || a2.Accepts(doc)) ++in_union;
    if (merged.Accepts(doc)) ++in_merged;
  }
  std::cout << "Catalogs considered: " << total << ", in true union: "
            << in_union << ", in merged XSD: " << in_merged
            << " (approximation overhead " << (in_merged - in_union)
            << ").\n";
  return 0;
}
