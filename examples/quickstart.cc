// Quickstart: define two XSDs, compute the minimal upper approximation of
// their union, validate documents against it, and print the result.
//
//   $ ./quickstart
#include <cstdio>
#include <iostream>

#include "stap/approx/upper_boolean.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/single_type.h"
#include "stap/schema/text_format.h"
#include "stap/tree/xml.h"

int main() {
  using namespace stap;  // NOLINT: example brevity

  // Two organizations describe "article" documents slightly differently.
  SchemaBuilder journal;
  journal.AddType("Article", "article", "Title Author+ Body");
  journal.AddType("Title", "title", "%");
  journal.AddType("Author", "author", "%");
  journal.AddType("Body", "body", "Section+");
  journal.AddType("Section", "section", "%");
  journal.AddStart("Article");

  SchemaBuilder blog;
  blog.AddType("Article", "article", "Title Body Tag*");
  blog.AddType("Title", "title", "%");
  blog.AddType("Body", "body", "Section*");
  blog.AddType("Section", "section", "%");
  blog.AddType("Tag", "tag", "%");
  blog.AddStart("Article");

  // The union of two XSDs need not be an XSD; compute the unique minimal
  // single-type language containing it (Theorem 3.6).
  DfaXsd merged = MinimizeXsd(UpperUnion(journal.Build(), blog.Build()));

  std::cout << "Merged schema (" << merged.type_size() << " types):\n"
            << SchemaToText(StEdtdFromDfaXsd(merged)) << "\n";

  const char* documents[] = {
      // A journal article.
      "<article><title/><author/><author/><body><section/></body>"
      "</article>",
      // A blog article.
      "<article><title/><body/><tag/><tag/></article>",
      // In NEITHER original schema: a journal-shaped article (authors!)
      // with an empty blog-style body. Ancestor-guarded subtree exchange
      // forces it into every XSD containing both — the price of EDC.
      "<article><title/><author/><body/></article>",
      // Garbage: rejected by everything.
      "<article><body/><title/></article>",
  };
  Alphabet doc_alphabet = merged.sigma;
  for (const char* source : documents) {
    StatusOr<Tree> document = ParseXml(source, &doc_alphabet);
    if (!document.ok()) {
      std::cout << "parse error: " << document.status() << "\n";
      continue;
    }
    bool valid = doc_alphabet.size() == merged.sigma.size() &&
                 merged.Accepts(*document);
    std::printf("%-70.70s -> %s\n", source, valid ? "VALID" : "INVALID");
  }
  return 0;
}
