// Relax-NG-to-XSD scenario (the paper's introduction): a Web service
// describes its interface with a full regular tree language (an EDTD with
// unrestricted typing, as Relax NG allows). Publishing it as an XSD
// requires an approximation:
//   * a minimal UPPER approximation (Construction 3.1) when the consumer
//     must accept every service document, or
//   * a maximal LOWER approximation when the published schema must not
//     promise anything the service cannot handle (here via the union
//     machinery of Theorem 4.8 on the schema's disjuncts).
#include <iostream>

#include "stap/approx/lower_check.h"
#include "stap/approx/nv.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/text_format.h"
#include "stap/schema/type_automaton.h"
#include "stap/tree/xml.h"

int main() {
  using namespace stap;  // NOLINT: example brevity

  // The service's Relax-NG-style grammar: a response is either a result
  // page (payload with records, status flagged ok) or an error page
  // (payload with a code, status flagged failed) — the *same* element
  // names <payload> and <status>, correlated only through the typing.
  // That correlation is exactly what EDC cannot express: an XSD must
  // give <payload> one type per context, so it cannot tie the payload's
  // content to the sibling status.
  SchemaBuilder service;
  service.AddType("Ok", "response", "PayloadOk StatusOk");
  service.AddType("Err", "response", "PayloadErr StatusErr");
  service.AddType("PayloadOk", "payload", "Record Record*");
  service.AddType("PayloadErr", "payload", "Code");
  service.AddType("StatusOk", "status", "Done");
  service.AddType("StatusErr", "status", "Failed");
  service.AddType("Record", "record", "%");
  service.AddType("Code", "code", "%");
  service.AddType("Done", "done", "%");
  service.AddType("Failed", "failed", "%");
  service.AddStart("Ok");
  service.AddStart("Err");
  Edtd grammar = service.Build();

  std::cout << "Single-type definable: "
            << (IsSingleTypeDefinable(grammar) ? "yes" : "no") << "\n\n";

  // Upper approximation: the XSD a lenient consumer should use.
  DfaXsd upper = MinimizeXsd(MinimalUpperApproximation(grammar));
  std::cout << "Minimal upper XSD-approximation ("
            << upper.type_size() << " types):\n"
            << SchemaToText(StEdtdFromDfaXsd(upper)) << "\n";

  // What did we give up? The approximation merges the two payload (and
  // status) types, so the correlation between payload content and status
  // flag is lost: "successful responses carrying an error code" slip in.
  Alphabet alphabet = upper.sigma;
  const char* probes[] = {
      "<response><payload><record/></payload><status><done/></status>"
      "</response>",
      "<response><payload><code/></payload><status><failed/></status>"
      "</response>",
      // The forced chimera: error payload with a success status.
      "<response><payload><code/></payload><status><done/></status>"
      "</response>",
      // Still rejected: shapes outside both pages.
      "<response><payload><record/><code/></payload>"
      "<status><done/></status></response>",
      "<response><payload/></response>",
  };
  for (const char* source : probes) {
    Tree doc = *ParseXml(source, &alphabet);
    std::cout << (grammar.Accepts(doc) ? "service " : "        ")
              << (upper.Accepts(doc) ? "xsd " : "    ") << source << "\n";
  }

  // Lower approximation containing the "Ok" disjunct: treat the grammar
  // as Ok ∪ Err and apply Theorem 4.8.
  SchemaBuilder ok_only;
  ok_only.AddType("Ok", "response", "PayloadOk StatusOk");
  ok_only.AddType("PayloadOk", "payload", "Record Record*");
  ok_only.AddType("StatusOk", "status", "Done");
  ok_only.AddType("Record", "record", "%");
  ok_only.AddType("Done", "done", "%");
  ok_only.AddStart("Ok");
  SchemaBuilder err_only;
  err_only.AddType("Err", "response", "PayloadErr StatusErr");
  err_only.AddType("PayloadErr", "payload", "Code");
  err_only.AddType("StatusErr", "status", "Failed");
  err_only.AddType("Code", "code", "%");
  err_only.AddType("Failed", "failed", "%");
  err_only.AddStart("Err");

  DfaXsd lower = LowerUnionFixingFirst(ok_only.Build(), err_only.Build());
  std::cout << "\nMaximal lower XSD-approximation containing the Ok "
               "disjunct ("
            << lower.type_size() << " types):\n"
            << SchemaToText(StEdtdFromDfaXsd(lower)) << "\n";
  Alphabet lower_alphabet = lower.sigma;
  for (const char* source : probes) {
    Tree doc = *ParseXml(source, &lower_alphabet);
    std::cout << (lower.Accepts(doc) ? "lower-xsd " : "          ")
              << source << "\n";
  }
  return 0;
}
