// Experiment E3 (Theorem 3.8): intersection of two XSDs is exactly
// single-type and computable in O(|D1|·|D2|); the prime-period chain
// family forces Ω(|D1|·|D2|) output types (lcm of the two periods).
#include <benchmark/benchmark.h>

#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"

namespace stap {
namespace {

void BM_UpperIntersection(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto [d1, d2] = Theorem38Family(n);
  const int p1 = ReduceEdtd(d1).num_types();
  const int p2 = ReduceEdtd(d2).num_types();
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd inter = UpperIntersection(d1, d2);
    type_size = inter.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["n"] = n;
  state.counters["p1"] = p1;
  state.counters["p2"] = p2;
  state.counters["p1_times_p2"] = static_cast<double>(p1) * p2;
  state.counters["type_size"] = static_cast<double>(type_size);
}

BENCHMARK(BM_UpperIntersection)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
