// Experiment E1 (Theorem 3.2): minimal upper XSD-approximation of an
// EDTD. Input family: (a+b)*a(a+b)^n as unary trees — size O(n); claimed
// output type-size Ω(2^n). The reported counters regenerate the theorem's
// shape: input_size grows linearly, type_size doubles with each step.
#include <benchmark/benchmark.h>

#include "stap/approx/upper.h"
#include "stap/gen/families.h"
#include "stap/schema/minimize.h"

namespace stap {
namespace {

void BM_MinimalUpperApproximation(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Edtd edtd = Theorem32Family(n);
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd upper = MinimalUpperApproximation(edtd);
    type_size = upper.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["n"] = n;
  state.counters["input_size"] = static_cast<double>(edtd.Size());
  state.counters["type_size"] = static_cast<double>(type_size);
  state.counters["minimized_type_size"] = static_cast<double>(
      MinimizeXsd(MinimalUpperApproximation(edtd)).type_size());
}

BENCHMARK(BM_MinimalUpperApproximation)
    ->DenseRange(2, 12, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
