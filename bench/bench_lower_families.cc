// Experiment E9 (Theorems 4.3 and 4.11): the ladders X_1, X_2, ... of
// pairwise-distinct maximal lower XSD-approximations. For each n the
// bench (a) verifies the lower-bound property on a bounded enumeration,
// (b) reproduces the proofs' escape argument — adding the witness tree to
// X_n lets ancestor-guarded exchange leave the target language — and
// reports the closure sizes involved.
#include <benchmark/benchmark.h>

#include "stap/approx/closure.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

void BM_Theorem43Ladder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto [d1, d2] = Theorem43Schemas();
  Edtd xn = Theorem43LowerApproximation(n);
  Edtd u1 = AlignAlphabets(xn, d1).second;
  Edtd u2 = AlignAlphabets(xn, d2).second;
  int a = xn.sigma.Find("a");
  int b = xn.sigma.Find("b");

  // Witness t = a^(n+1) b ∈ L(D1) \ L(X_n) and member a^n(a, a) ∈ L(X_n).
  Word chain(static_cast<size_t>(n + 1), a);
  chain.push_back(b);
  Tree witness = Tree::Unary(chain);
  Tree member(a, {Tree(a), Tree(a)});
  for (int i = 1; i < n; ++i) member = Tree(a, {member});

  int64_t closure_size = 0;
  bool escaped = false;
  for (auto _ : state) {
    ClosureResult closure = CloseUnderExchange({witness, member});
    closure_size = static_cast<int64_t>(closure.trees.size());
    escaped = FindEscape(closure, [&](const Tree& tree) {
                return !u1.Accepts(tree) && !u2.Accepts(tree);
              }).has_value();
    benchmark::DoNotOptimize(escaped);
  }

  // Lower-bound property on the bounded enumeration.
  int64_t members = 0;
  bool is_lower = true;
  for (const Tree& tree : EnumerateTrees({4, 2, 2})) {
    if (!xn.Accepts(tree)) continue;
    ++members;
    if (!u1.Accepts(tree) && !u2.Accepts(tree)) is_lower = false;
  }
  state.counters["n"] = n;
  state.counters["closure_size"] = static_cast<double>(closure_size);
  state.counters["escape_found"] = escaped ? 1 : 0;
  state.counters["is_lower_bound"] = is_lower ? 1 : 0;
  state.counters["bounded_members"] = static_cast<double>(members);
}

void BM_Theorem411Ladder(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Edtd dtd = Theorem411Dtd();  // unary chains; target = its complement
  Edtd xn = Theorem411LowerApproximation(n);
  int a = xn.sigma.Find("a");

  // Witness: t_{m} with m != n+1 — a chain of single children with a
  // final branching node at the wrong depth (here depth n + 2).
  Tree witness(a, {Tree(a), Tree(a)});
  for (int i = 0; i < n; ++i) witness = Tree(a, {witness});
  // Member: the matching-depth tree t_{n+1} ∈ L(X_n).
  Tree member(a, {Tree(a), Tree(a)});
  for (int i = 1; i < n; ++i) member = Tree(a, {member});

  int64_t closure_size = 0;
  bool escaped = false;
  for (auto _ : state) {
    ClosureResult closure = CloseUnderExchange({witness, member});
    closure_size = static_cast<int64_t>(closure.trees.size());
    // Escape = a unary chain (a member of L(D), i.e. outside the
    // complement).
    escaped = FindEscape(closure, [&](const Tree& tree) {
                return dtd.Accepts(tree);
              }).has_value();
    benchmark::DoNotOptimize(escaped);
  }
  bool is_lower = true;
  for (const Tree& tree : EnumerateTrees({4, 2, 1})) {
    if (xn.Accepts(tree) && dtd.Accepts(tree)) is_lower = false;
  }
  state.counters["n"] = n;
  state.counters["closure_size"] = static_cast<double>(closure_size);
  state.counters["escape_found"] = escaped ? 1 : 0;
  state.counters["is_lower_bound"] = is_lower ? 1 : 0;
}

BENCHMARK(BM_Theorem43Ladder)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Theorem411Ladder)->DenseRange(1, 6)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
