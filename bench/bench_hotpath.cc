// Hot-path kernels, hashed vs. the original std::map-based versions (kept
// here as reference baselines). Instances are seeded random NFAs; run with
// --benchmark_format=json for machine-readable before/after numbers (see
// bench/results/hotpath.json and EXPERIMENTS.md).
//
// This bench has a custom main (no benchmark_main) so it accepts the same
// global resource flags as the stap CLI, stripped before the benchmark
// library parses the remainder:
//   --budget-ms=N --max-states=N --max-sets=N   applied per iteration of
//                                               the *Budgeted benchmarks
//   --metrics-json[=F]                          dump the metrics registry
//                                               after the run (F=- or bare
//                                               flag writes to stderr)
//   --trace-json[=F]                            record a Chrome trace-event
//                                               session around the whole run
//                                               (F=- or bare flag → stderr);
//                                               used by EXPERIMENTS.md E18
//                                               to measure tracing overhead
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <optional>
#include <random>
#include <string>
#include <utility>
#include <vector>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper.h"
#include "stap/automata/antichain.h"
#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/minimize.h"
#include "stap/base/budget.h"
#include "stap/base/metrics.h"
#include "stap/base/thread_pool.h"
#include "stap/base/trace.h"
#include "stap/gen/random.h"
#include "stap/regex/ast.h"
#include "stap/regex/glushkov.h"

namespace stap {
namespace {

// Budget limits parsed from the command line by main. Budgets latch once
// exhausted, so the budgeted benchmarks build a fresh Budget per
// iteration from these limits instead of sharing one instance.
struct BudgetConfig {
  int64_t budget_ms = -1;
  int64_t max_states = -1;
  int64_t max_sets = -1;
};
BudgetConfig g_budget_config;

void ApplyBudgetConfig(Budget* budget) {
  if (g_budget_config.budget_ms >= 0) {
    budget->set_deadline_ms(g_budget_config.budget_ms);
  }
  if (g_budget_config.max_states >= 0) {
    budget->set_max_states(g_budget_config.max_states);
  }
  if (g_budget_config.max_sets >= 0) {
    budget->set_max_sets(g_budget_config.max_sets);
  }
}

// ---------------------------------------------------------------------
// Reference (pre-interning) kernels, including the original chained
// set_union successor computation that Nfa::NextInto replaced.
// ---------------------------------------------------------------------

StateSet MapNext(const Nfa& nfa, const StateSet& states, int symbol) {
  StateSet result;
  for (int q : states) {
    const StateSet& succ = nfa.Next(q, symbol);
    StateSet merged;
    merged.reserve(result.size() + succ.size());
    std::set_union(result.begin(), result.end(), succ.begin(), succ.end(),
                   std::back_inserter(merged));
    result = std::move(merged);
  }
  return result;
}

Dfa MapDeterminize(const Nfa& nfa) {
  const int num_symbols = nfa.num_symbols();
  std::map<StateSet, int> ids;
  std::vector<StateSet> worklist;

  Dfa dfa(0, num_symbols);
  auto intern = [&](StateSet set) -> int {
    auto [it, inserted] = ids.emplace(std::move(set), dfa.num_states());
    if (inserted) {
      dfa.AddState();
      worklist.push_back(it->first);
    }
    return it->second;
  };

  dfa.SetInitial(intern(nfa.initial()));
  size_t processed = 0;
  while (processed < worklist.size()) {
    StateSet current = worklist[processed];
    int current_id = ids.at(current);
    ++processed;
    for (int q : current) {
      if (nfa.IsFinal(q)) {
        dfa.SetFinal(current_id);
        break;
      }
    }
    for (int a = 0; a < num_symbols; ++a) {
      dfa.SetTransition(current_id, a, intern(MapNext(nfa, current, a)));
    }
  }
  return dfa;
}

Dfa MapMinimize(const Dfa& input) {
  Dfa dfa = input.Trimmed().Completed();
  const int n = dfa.num_states();
  const int num_symbols = dfa.num_symbols();

  std::vector<int> classes(n);
  for (int q = 0; q < n; ++q) classes[q] = dfa.IsFinal(q) ? 1 : 0;

  int num_classes = 2;
  while (true) {
    std::map<std::vector<int>, int> signature_ids;
    std::vector<int> next_classes(n);
    for (int q = 0; q < n; ++q) {
      std::vector<int> signature;
      signature.reserve(num_symbols + 1);
      signature.push_back(classes[q]);
      for (int a = 0; a < num_symbols; ++a) {
        signature.push_back(classes[dfa.Next(q, a)]);
      }
      auto [it, inserted] =
          signature_ids.emplace(std::move(signature), signature_ids.size());
      next_classes[q] = it->second;
    }
    int next_num_classes = static_cast<int>(signature_ids.size());
    classes = std::move(next_classes);
    if (next_num_classes == num_classes) break;
    num_classes = next_num_classes;
  }

  Dfa quotient(num_classes, num_symbols);
  quotient.SetInitial(classes[dfa.initial()]);
  for (int q = 0; q < n; ++q) {
    if (dfa.IsFinal(q)) quotient.SetFinal(classes[q]);
    for (int a = 0; a < num_symbols; ++a) {
      quotient.SetTransition(classes[q], a, classes[dfa.Next(q, a)]);
    }
  }
  // The production Minimize additionally canonicalizes the numbering; that
  // step is identical in both versions and cheap, so it is omitted from
  // the baseline to keep the comparison focused on the refinement loop.
  return quotient.Trimmed();
}

bool MapNfaIncludedInNfa(const Nfa& a, const Nfa& b) {
  const int num_symbols = a.num_symbols();
  std::map<std::pair<StateSet, StateSet>, bool> seen;
  std::vector<std::pair<StateSet, StateSet>> worklist;
  auto visit = [&](StateSet sa, StateSet sb) {
    auto [it, inserted] =
        seen.emplace(std::make_pair(std::move(sa), std::move(sb)), true);
    if (inserted) worklist.push_back(it->first);
  };
  visit(a.initial(), b.initial());
  auto accepts = [](const Nfa& nfa, const StateSet& set) {
    for (int q : set) {
      if (nfa.IsFinal(q)) return true;
    }
    return false;
  };
  size_t processed = 0;
  while (processed < worklist.size()) {
    auto [sa, sb] = worklist[processed];
    ++processed;
    if (accepts(a, sa) && !accepts(b, sb)) return false;
    for (int sym = 0; sym < num_symbols; ++sym) {
      StateSet next_a = MapNext(a, sa, sym);
      if (next_a.empty()) continue;
      visit(std::move(next_a), MapNext(b, sb, sym));
    }
  }
  return true;
}

// ---------------------------------------------------------------------
// Workloads.
// ---------------------------------------------------------------------

Nfa MakeNfa(int num_states, int seed) {
  std::mt19937 rng(seed * 2654435761u + 12345u);
  return RandomNfa(&rng, num_states, /*num_symbols=*/4,
                   /*transitions_per_state=*/3);
}

// A strict superset of `base` (extra transitions and finals), so that
// L(base) ⊆ L(result) holds and the inclusion search has to explore the
// whole reachable pair space instead of stopping at an early
// counterexample.
Nfa Loosen(const Nfa& base, int seed) {
  std::mt19937 rng(seed * 69069u + 1u);
  Nfa result = base;
  for (int q = 0; q < result.num_states(); ++q) {
    if (rng() % 100 < 40) {
      result.AddTransition(q, static_cast<int>(rng() % result.num_symbols()),
                           static_cast<int>(rng() % result.num_states()));
    }
  }
  result.SetFinal(static_cast<int>(rng() % result.num_states()));
  return result;
}

void BM_DeterminizeHashed(benchmark::State& state) {
  Nfa nfa = MakeNfa(static_cast<int>(state.range(0)), 7);
  int states = 0;
  for (auto _ : state) {
    Dfa dfa = Determinize(nfa);
    states = dfa.num_states();
    benchmark::DoNotOptimize(dfa);
  }
  state.counters["dfa_states"] = states;
}

void BM_DeterminizeMap(benchmark::State& state) {
  Nfa nfa = MakeNfa(static_cast<int>(state.range(0)), 7);
  int states = 0;
  for (auto _ : state) {
    Dfa dfa = MapDeterminize(nfa);
    states = dfa.num_states();
    benchmark::DoNotOptimize(dfa);
  }
  state.counters["dfa_states"] = states;
}

void BM_MinimizeHashed(benchmark::State& state) {
  Dfa dfa = Determinize(MakeNfa(static_cast<int>(state.range(0)), 11));
  for (auto _ : state) {
    Dfa minimized = Minimize(dfa);
    benchmark::DoNotOptimize(minimized);
  }
  state.counters["dfa_states"] = dfa.num_states();
}

void BM_MinimizeMap(benchmark::State& state) {
  Dfa dfa = Determinize(MakeNfa(static_cast<int>(state.range(0)), 11));
  for (auto _ : state) {
    Dfa minimized = MapMinimize(dfa);
    benchmark::DoNotOptimize(minimized);
  }
  state.counters["dfa_states"] = dfa.num_states();
}

void BM_NfaInclusionHashed(benchmark::State& state) {
  Nfa a = MakeNfa(static_cast<int>(state.range(0)), 3);
  Nfa b = Loosen(a, 5);
  for (auto _ : state) {
    bool included = NfaIncludedInNfa(a, b);
    benchmark::DoNotOptimize(included);
  }
}

void BM_NfaInclusionMap(benchmark::State& state) {
  Nfa a = MakeNfa(static_cast<int>(state.range(0)), 3);
  Nfa b = Loosen(a, 5);
  for (auto _ : state) {
    bool included = MapNfaIncludedInNfa(a, b);
    benchmark::DoNotOptimize(included);
  }
}

BENCHMARK(BM_DeterminizeHashed)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_DeterminizeMap)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_MinimizeHashed)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_MinimizeMap)->RangeMultiplier(2)->Range(8, 64);
BENCHMARK(BM_NfaInclusionHashed)->RangeMultiplier(2)->Range(8, 32);
BENCHMARK(BM_NfaInclusionMap)->RangeMultiplier(2)->Range(8, 32);

// ---------------------------------------------------------------------
// Antichain-vs-determinize crossover on the paper's exponential
// lower-bound family (Theorem 3.2's string language).
// ---------------------------------------------------------------------

// The Glushkov NFA of (a+b)* a (a+b)^n — "the (n+1)-th letter from the
// end is an a". Every determinization-based route explores the full
// 2^(n+1) subset space on the self-inclusion L ⊆ L, while the antichain
// frontier collapses onto the ⊆-minimal reachable set per NFA state
// (reached by the short word a b^(k-1)), keeping the search polynomial.
Nfa LowerBoundNfa(int n) {
  RegexPtr ab = Regex::Union({Regex::Symbol(0), Regex::Symbol(1)});
  std::vector<RegexPtr> parts;
  parts.push_back(Regex::Star(ab));
  parts.push_back(Regex::Symbol(0));
  for (int i = 0; i < n; ++i) parts.push_back(ab);
  return GlushkovAutomaton(*Regex::Concat(std::move(parts)),
                           /*num_symbols=*/2);
}

void BM_LowerBoundInclusionAntichain(benchmark::State& state) {
  Nfa nfa = LowerBoundNfa(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool included = AntichainIncluded(nfa, nfa);
    benchmark::DoNotOptimize(included);
  }
  state.counters["nfa_states"] = nfa.num_states();
}

// The retired production path: BFS over pairs of subsets (see
// NfaIncludedInNfaViaSubsets in automata/inclusion.h).
void BM_LowerBoundInclusionSubsets(benchmark::State& state) {
  Nfa nfa = LowerBoundNfa(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    bool included = NfaIncludedInNfaViaSubsets(nfa, nfa);
    benchmark::DoNotOptimize(included);
  }
  state.counters["nfa_states"] = nfa.num_states();
}

// Determinize the right-hand side up front, then run the subset×DFA-state
// product search.
void BM_LowerBoundInclusionDeterminize(benchmark::State& state) {
  Nfa nfa = LowerBoundNfa(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    Dfa dfa = Determinize(nfa);
    bool included =
        !NfaDfaInclusionCounterexampleViaSubsets(nfa, dfa).has_value();
    benchmark::DoNotOptimize(included);
  }
  state.counters["nfa_states"] = nfa.num_states();
}

BENCHMARK(BM_LowerBoundInclusionAntichain)->DenseRange(2, 18, 2)->Arg(64);
BENCHMARK(BM_LowerBoundInclusionSubsets)->DenseRange(2, 18, 2);
BENCHMARK(BM_LowerBoundInclusionDeterminize)->DenseRange(2, 18, 2);

// Budget-governed determinization of the family: the subset construction
// on (a+b)* a (a+b)^n builds 2^(n+1) DFA states, so Arg(24) is infeasible
// without a cap. Each iteration gets a fresh Budget from the command-line
// limits — topped up with a default state cap so the benchmark stays
// bounded when run without flags — and the counter reports how many
// iterations the budget cut short. What this measures is the overhead of
// charging plus how quickly exhaustion unwinds: the per-iteration time at
// Arg(24) should track the cap, not the 2^25 subset space.
void BM_LowerBoundDeterminizeBudgeted(benchmark::State& state) {
  Nfa nfa = LowerBoundNfa(static_cast<int>(state.range(0)));
  int exhausted = 0;
  for (auto _ : state) {
    Budget budget;
    ApplyBudgetConfig(&budget);
    if (g_budget_config.budget_ms < 0 && g_budget_config.max_states < 0) {
      budget.set_max_states(1 << 16);
    }
    StatusOr<Dfa> dfa = Determinize(nfa, &budget);
    if (!dfa.ok()) ++exhausted;
    benchmark::DoNotOptimize(dfa);
  }
  state.counters["exhausted"] =
      benchmark::Counter(static_cast<double>(exhausted));
}

BENCHMARK(BM_LowerBoundDeterminizeBudgeted)->Arg(12)->Arg(24);

// ---------------------------------------------------------------------
// Parallel approximation sweep: EdtdIncludedInXsd with the per-pair
// content checks on a ThreadPool. Arg = worker threads (0 = serial
// path, no pool). The instance is d ⊆ minupper(d), which always holds,
// so the sweep visits every reachable pair (no early-out).
// ---------------------------------------------------------------------

void BM_EdtdInclusionSweep(benchmark::State& state) {
  std::mt19937 rng(987654321u);
  RandomSchemaParams params;
  params.num_symbols = 5;
  params.num_types = 14;
  params.content_breadth = 3;
  Edtd d = RandomEdtd(&rng, params);
  DfaXsd upper = MinimalUpperApproximation(d);
  const int threads = static_cast<int>(state.range(0));
  ThreadPool pool(threads);
  ThreadPool* pool_ptr = threads == 0 ? nullptr : &pool;
  for (auto _ : state) {
    bool included = EdtdIncludedInXsd(d, upper, pool_ptr);
    benchmark::DoNotOptimize(included);
  }
}

BENCHMARK(BM_EdtdInclusionSweep)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

// Strips the stap resource flags (see the file comment) out of argv
// before benchmark::Initialize sees them, filling g_budget_config and the
// metrics sink. Returns false on a malformed integer value.
bool StripResourceFlags(int* argc, char** argv, bool* dump_metrics,
                        std::string* metrics_path, bool* trace,
                        std::string* trace_path) {
  auto int_value = [](const char* text, int64_t* out) {
    char* end = nullptr;
    long long parsed = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || parsed < 0) return false;
    *out = parsed;
    return true;
  };
  int kept = 1;
  bool ok = true;
  for (int i = 1; i < *argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--budget-ms=", 0) == 0) {
      ok = ok && int_value(arg.c_str() + 12, &g_budget_config.budget_ms);
    } else if (arg.rfind("--max-states=", 0) == 0) {
      ok = ok && int_value(arg.c_str() + 13, &g_budget_config.max_states);
    } else if (arg.rfind("--max-sets=", 0) == 0) {
      ok = ok && int_value(arg.c_str() + 11, &g_budget_config.max_sets);
    } else if (arg == "--metrics-json") {
      *dump_metrics = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      *dump_metrics = true;
      *metrics_path = arg.substr(15);
    } else if (arg == "--trace-json") {
      *trace = true;
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      *trace = true;
      *trace_path = arg.substr(13);
    } else {
      argv[kept++] = argv[i];
    }
  }
  *argc = kept;
  return ok;
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) {
  bool dump_metrics = false;
  std::string metrics_path;
  bool trace = false;
  std::string trace_path;
  if (!stap::StripResourceFlags(&argc, argv, &dump_metrics, &metrics_path,
                                &trace, &trace_path)) {
    std::cerr << "error: malformed resource flag value\n";
    return 1;
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // The session (when requested) wraps the whole benchmark run; E18
  // compares timings with and without it to bound the active-tracing tax.
  stap::TraceSession session;
  if (trace) session.Start();
  benchmark::RunSpecifiedBenchmarks();
  if (trace) {
    session.Stop();
    const std::string json = session.ToChromeJson();
    if (trace_path.empty() || trace_path == "-") {
      std::cerr << json << "\n";
    } else {
      std::ofstream out(trace_path);
      if (!out) {
        std::cerr << "error: cannot write trace to '" << trace_path << "'\n";
        return 1;
      }
      out << json << "\n";
    }
  }
  benchmark::Shutdown();
  if (dump_metrics) {
    const std::string json = stap::MetricsRegistry::Global()->ToJson();
    if (metrics_path.empty() || metrics_path == "-") {
      std::cerr << json << "\n";
    } else {
      std::ofstream out(metrics_path);
      if (!out) {
        std::cerr << "error: cannot write metrics to '" << metrics_path
                  << "'\n";
        return 1;
      }
      out << json << "\n";
    }
  }
  return 0;
}
