// Experiment E7 (Theorem 3.5): deciding whether a candidate XSD is the
// minimal upper approximation of a target EDTD. The decision is
// PSPACE-complete in general; the on-the-fly product keeps memory
// proportional to the frontier. Instances: the Theorem 3.6 union family,
// with the construction's own output as the (positive) candidate.
#include <benchmark/benchmark.h>

#include "stap/approx/minimal_upper_check.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"

namespace stap {
namespace {

void BM_MinimalUpperCheckPositive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto [d1, d2] = Theorem36Family(n);
  Edtd target = EdtdUnion(d1, d2);
  Edtd candidate = StEdtdFromDfaXsd(MinimalUpperApproximation(target));
  bool verdict = false;
  for (auto _ : state) {
    verdict = IsMinimalUpperApproximation(candidate, target);
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["n"] = n;
  state.counters["candidate_types"] = candidate.num_types();
  state.counters["verdict"] = verdict ? 1 : 0;
}

void BM_MinimalUpperCheckNegative(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto [d1, d2] = Theorem36Family(n);
  Edtd target = EdtdUnion(d1, d2);
  // d1 alone is not even an upper bound: early rejection path.
  bool verdict = true;
  for (auto _ : state) {
    verdict = IsMinimalUpperApproximation(d1, target);
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["n"] = n;
  state.counters["verdict"] = verdict ? 1 : 0;
}

BENCHMARK(BM_MinimalUpperCheckPositive)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MinimalUpperCheckNegative)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
