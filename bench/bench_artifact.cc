// Experiment E19: compiled-schema artifacts vs. recompilation.
//
// The serving-path question: a process that validates a batch of
// documents can either recompile the schema from source per invocation
// (cold) or load a compiled artifact once and share it (warm). The
// headline pair — BM_ColdBatchValidate / BM_WarmBatchValidate — runs the
// same 100-document batch both ways; the recorded speedup backs the
// >= 5x claim in EXPERIMENTS.md. The micro benches price the artifact
// codec itself and a compile-cache hit.
#include <benchmark/benchmark.h>

#include <random>
#include <string>
#include <vector>

#include "stap/base/check.h"
#include "stap/base/compile_cache.h"
#include "stap/gen/random.h"
#include "stap/io/artifact.h"
#include "stap/io/batch_validate.h"
#include "stap/schema/text_format.h"
#include "stap/tree/xml.h"

namespace stap {
namespace {

constexpr int kNumDocuments = 100;

struct Workload {
  std::string schema_text;       // the cold path's input
  std::string artifact_bytes;    // the warm path's input
  CompiledSchema schema;         // pre-loaded, for codec micros
  std::vector<BatchDocument> documents;
};

// A single-type schema big enough that compilation (Glushkov →
// determinize → minimize per content model, reduction, conversion)
// dominates validating one small document — the regime the artifact
// format exists for.
const Workload& GetWorkload() {
  static const Workload* workload = [] {
    auto* w = new Workload();
    std::mt19937 rng(20260806);
    RandomSchemaParams params;
    params.num_symbols = 8;
    params.num_types = 40;
    params.content_breadth = 3;
    Edtd edtd = RandomStEdtd(&rng, params);
    w->schema_text = SchemaToText(edtd);

    StatusOr<CompiledSchema> compiled =
        CompileSchema(w->schema_text, nullptr);
    STAP_CHECK(compiled.ok());
    w->schema = std::move(*compiled);
    w->artifact_bytes = SerializeArtifact(w->schema);

    for (int i = 0; i < kNumDocuments; ++i) {
      BatchDocument document;
      document.name = "doc" + std::to_string(i);
      auto tree = SampleTree(w->schema.xsd, &rng);
      STAP_CHECK(tree.has_value());
      document.xml = ToXml(*tree, w->schema.edtd.sigma);
      w->documents.push_back(std::move(document));
    }
    return w;
  }();
  return *workload;
}

// Cold: every document pays a full schema compilation from source, the
// cost a validator without artifacts pays per invocation.
void BM_ColdBatchValidate(benchmark::State& state) {
  const Workload& w = GetWorkload();
  int num_valid = 0;
  for (auto _ : state) {
    num_valid = 0;
    for (const BatchDocument& document : w.documents) {
      StatusOr<CompiledSchema> schema = CompileSchema(w.schema_text, nullptr);
      STAP_CHECK(schema.ok());
      BatchResult result = BatchValidate(*schema, {document}, BatchOptions());
      num_valid += result.num_valid;
    }
    benchmark::DoNotOptimize(num_valid);
  }
  state.counters["documents"] = kNumDocuments;
  state.counters["valid"] = num_valid;
}

// Warm: one artifact load, then the whole batch against the shared
// schema. Same work product as the cold loop.
void BM_WarmBatchValidate(benchmark::State& state) {
  const Workload& w = GetWorkload();
  const int jobs = static_cast<int>(state.range(0));
  int num_valid = 0;
  for (auto _ : state) {
    StatusOr<CompiledSchema> schema = DeserializeArtifact(w.artifact_bytes);
    STAP_CHECK(schema.ok());
    BatchOptions options;
    options.jobs = jobs;
    BatchResult result = BatchValidate(*schema, w.documents, options);
    num_valid = result.num_valid;
    benchmark::DoNotOptimize(num_valid);
  }
  state.counters["documents"] = kNumDocuments;
  state.counters["jobs"] = jobs;
  state.counters["valid"] = num_valid;
}

void BM_SerializeArtifact(benchmark::State& state) {
  const Workload& w = GetWorkload();
  for (auto _ : state) {
    std::string bytes = SerializeArtifact(w.schema);
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["bytes"] =
      static_cast<double>(w.artifact_bytes.size());
}

void BM_DeserializeArtifact(benchmark::State& state) {
  const Workload& w = GetWorkload();
  for (auto _ : state) {
    StatusOr<CompiledSchema> schema = DeserializeArtifact(w.artifact_bytes);
    benchmark::DoNotOptimize(schema);
  }
  state.counters["bytes"] =
      static_cast<double>(w.artifact_bytes.size());
}

// One full schema compilation from source (the unit the cold loop pays
// per document), for the E19 cost breakdown.
void BM_CompileSchemaUncached(benchmark::State& state) {
  const Workload& w = GetWorkload();
  for (auto _ : state) {
    StatusOr<CompiledSchema> schema = CompileSchema(w.schema_text, nullptr);
    benchmark::DoNotOptimize(schema);
  }
}

// The same compilation through a warm compile cache: parsing still runs,
// but every content model is a cache hit.
void BM_CompileSchemaWarmCache(benchmark::State& state) {
  const Workload& w = GetWorkload();
  CompileCache cache(16);
  StatusOr<CompiledSchema> warmup = CompileSchema(w.schema_text, &cache);
  STAP_CHECK(warmup.ok());
  for (auto _ : state) {
    StatusOr<CompiledSchema> schema = CompileSchema(w.schema_text, &cache);
    benchmark::DoNotOptimize(schema);
  }
}

// A single cache hit: key construction + sharded lookup.
void BM_CacheHit(benchmark::State& state) {
  const Workload& w = GetWorkload();
  CompileCache cache(16);
  Alphabet types = w.schema.edtd.types;
  ContentModelKey key = MakeContentModelKey("T0 T1*", types);
  StatusOr<std::shared_ptr<const Dfa>> seeded = cache.GetOrCompile(
      key, [&]() -> StatusOr<Dfa> { return Dfa::AllWords(types.size()); });
  STAP_CHECK(seeded.ok());
  for (auto _ : state) {
    StatusOr<std::shared_ptr<const Dfa>> dfa = cache.GetOrCompile(
        key, [&]() -> StatusOr<Dfa> { return Dfa::AllWords(types.size()); });
    benchmark::DoNotOptimize(dfa);
  }
}

BENCHMARK(BM_ColdBatchValidate)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_WarmBatchValidate)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SerializeArtifact)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeserializeArtifact)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_CompileSchemaUncached)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CompileSchemaWarmCache)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_CacheHit)->Unit(benchmark::kNanosecond);

}  // namespace
}  // namespace stap
