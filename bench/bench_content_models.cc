// Experiment E12 (Section 5): content-model formalisms. Measures the
// RE -> Glushkov -> DFA -> minimal DFA pipeline on random expressions,
// the one-unambiguity (UPA) test, and the NFA -> DFA blow-up family that
// underlies Theorem 3.2 (the n-th-symbol-from-the-end language).
#include <benchmark/benchmark.h>

#include <random>

#include "stap/automata/determinize.h"
#include "stap/automata/minimize.h"
#include "stap/regex/ast.h"
#include "stap/regex/bkw.h"
#include "stap/regex/from_dfa.h"
#include "stap/regex/glushkov.h"

namespace stap {
namespace {

RegexPtr RandomRegex(std::mt19937* rng, int depth, int num_symbols) {
  int choice = static_cast<int>((*rng)() % (depth <= 0 ? 2 : 7));
  switch (choice) {
    case 0:
    case 1:
      return Regex::Symbol(static_cast<int>((*rng)() % num_symbols));
    case 2:
      return Regex::Star(RandomRegex(rng, depth - 1, num_symbols));
    case 3:
      return Regex::Optional(RandomRegex(rng, depth - 1, num_symbols));
    case 4:
      return Regex::Union({RandomRegex(rng, depth - 1, num_symbols),
                           RandomRegex(rng, depth - 1, num_symbols)});
    default:
      return Regex::Concat({RandomRegex(rng, depth - 1, num_symbols),
                            RandomRegex(rng, depth - 1, num_symbols)});
  }
}

void BM_RegexToDfaPipeline(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  std::mt19937 rng(55 + depth);
  RegexPtr regex = RandomRegex(&rng, depth, 3);
  int64_t dfa_states = 0;
  for (auto _ : state) {
    Dfa dfa = RegexToDfa(*regex, 3);
    dfa_states = dfa.num_states();
    benchmark::DoNotOptimize(dfa_states);
  }
  state.counters["regex_nodes"] = regex->NumNodes();
  state.counters["dfa_states"] = static_cast<double>(dfa_states);
  state.counters["one_unambiguous"] = IsOneUnambiguous(*regex, 3) ? 1 : 0;
}

void BM_DeterminizationBlowup(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  // (a+b)* a (a+b)^(n-1): minimal DFA has 2^n states.
  std::vector<RegexPtr> parts;
  RegexPtr ab = Regex::Union({Regex::Symbol(0), Regex::Symbol(1)});
  parts.push_back(Regex::Star(ab));
  parts.push_back(Regex::Symbol(0));
  for (int i = 0; i < n - 1; ++i) parts.push_back(ab);
  RegexPtr regex = Regex::Concat(std::move(parts));
  Nfa glushkov = GlushkovAutomaton(*regex, 2);
  int64_t dfa_states = 0;
  for (auto _ : state) {
    Dfa dfa = Minimize(Determinize(glushkov));
    dfa_states = dfa.num_states();
    benchmark::DoNotOptimize(dfa_states);
  }
  state.counters["n"] = n;
  state.counters["nfa_states"] = glushkov.num_states();
  state.counters["dfa_states"] = static_cast<double>(dfa_states);
}

void BM_DfaToRegexRoundTrip(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  std::mt19937 rng(99 + depth);
  RegexPtr regex = RandomRegex(&rng, depth, 3);
  Dfa dfa = RegexToDfa(*regex, 3);
  int64_t nodes = 0;
  for (auto _ : state) {
    RegexPtr back = DfaToRegex(dfa);
    nodes = back->NumNodes();
    benchmark::DoNotOptimize(nodes);
  }
  state.counters["dfa_states"] = dfa.num_states();
  state.counters["regex_nodes_out"] = static_cast<double>(nodes);
}

void BM_BkwOneUnambiguityTest(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  std::mt19937 rng(7 + depth);
  RegexPtr regex = RandomRegex(&rng, depth, 2);
  Dfa dfa = RegexToDfa(*regex, 2);
  bool verdict = false;
  for (auto _ : state) {
    verdict = IsOneUnambiguousLanguage(dfa);
    benchmark::DoNotOptimize(verdict);
  }
  state.counters["dfa_states"] = dfa.num_states();
  state.counters["one_unambiguous_language"] = verdict ? 1 : 0;
}

BENCHMARK(BM_BkwOneUnambiguityTest)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);

BENCHMARK(BM_RegexToDfaPipeline)
    ->DenseRange(2, 10, 2)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_DeterminizationBlowup)
    ->DenseRange(2, 14, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_DfaToRegexRoundTrip)
    ->DenseRange(2, 8, 2)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace stap
