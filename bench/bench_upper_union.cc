// Experiment E2 (Theorem 3.6): upper approximation of the union of two
// XSDs runs in O(|D1|·|D2|); the paper's family forces Ω(n²) output
// types. Counters report |D1|, |D2|, the product bound, and the actual
// (minimized) type-size — the quadratic curve of the theorem.
#include <benchmark/benchmark.h>

#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/schema/minimize.h"

namespace stap {
namespace {

void BM_UpperUnion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto [d1, d2] = Theorem36Family(n);
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd upper = UpperUnion(d1, d2);
    type_size = upper.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["n"] = n;
  state.counters["size_d1"] = static_cast<double>(d1.Size());
  state.counters["size_d2"] = static_cast<double>(d2.Size());
  state.counters["product_bound"] =
      static_cast<double>(d1.Size() * d2.Size());
  state.counters["type_size"] = static_cast<double>(type_size);
  state.counters["minimized_type_size"] =
      static_cast<double>(MinimizeXsd(UpperUnion(d1, d2)).type_size());
  state.counters["n_squared"] = static_cast<double>(n) * n;
}

BENCHMARK(BM_UpperUnion)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
