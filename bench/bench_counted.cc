// Experiment E22: counted content models, count-preserving vs expanded.
// The counted family's schema *source* is O(1) (`Item{n,2n}`), but the
// compiled content DFA is Θ(n) — compilation must pay the expansion
// (BM_CompileCounted tracks that growth; the budget makes it safe).
// What provenance buys is the way *back out*: ExportXsd with the
// retained counted source emits `minOccurs="n" maxOccurs="2n"` in O(1)
// bytes, while the provenance-stripped path re-derives a regex from the
// Θ(n)-state DFA and emits the expanded particle. `xsd_bytes` is the
// headline counter; `dfa_states` documents the compile-side cost both
// variants share.
#include <benchmark/benchmark.h>

#include <string>

#include "stap/gen/families.h"
#include "stap/schema/edtd.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/xsd_io.h"

namespace stap {
namespace {

// The validator the export benchmarks start from: reduced, single-type,
// minimized — the same pipeline `stap export` runs.
DfaXsd CountedXsd(int n) {
  return MinimizeXsd(DfaXsdFromStEdtd(ReduceEdtd(CountedFamily(n, 2 * n))));
}

int TotalContentStates(const Edtd& edtd) {
  int total = 0;
  for (const Dfa& dfa : edtd.content) total += dfa.num_states();
  return total;
}

// Compile cost of the counted family as the bound grows: SchemaBuilder
// runs the full Glushkov expansion → determinize → minimize per content
// model, so time and `dfa_states` both scale with n.
void BM_CompileCounted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  int states = 0;
  for (auto _ : state) {
    Edtd edtd = CountedFamily(n, 2 * n);
    states = TotalContentStates(edtd);
    benchmark::DoNotOptimize(edtd);
  }
  state.counters["n"] = static_cast<double>(n);
  state.counters["dfa_states"] = static_cast<double>(states);
}

// Count-preserving export: content_source survives the pipeline, so the
// emitted particle is `minOccurs/maxOccurs` — O(1) bytes in n.
void BM_ExportCountPreserving(benchmark::State& state) {
  const DfaXsd xsd = CountedXsd(static_cast<int>(state.range(0)));
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out = ExportXsd(xsd);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["xsd_bytes"] = static_cast<double>(bytes);
}

// The pre-provenance behavior: strip content_source and force the
// exporter through DfaToRegex, which re-derives an expanded particle
// from the Θ(n)-state content DFA — Θ(n) bytes and regex-synthesis time.
void BM_ExportExpanded(benchmark::State& state) {
  DfaXsd xsd = CountedXsd(static_cast<int>(state.range(0)));
  xsd.content_source.clear();
  size_t bytes = 0;
  for (auto _ : state) {
    std::string out = ExportXsd(xsd);
    bytes = out.size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["xsd_bytes"] = static_cast<double>(bytes);
}

// Import side of the A/B: re-ingesting a count-preserving export parses
// O(1) syntax then pays the same expansion at compile time; re-ingesting
// an expanded export also parses Θ(n) particles first.
void BM_ImportCountPreserving(benchmark::State& state) {
  const std::string xml = ExportXsd(CountedXsd(static_cast<int>(
      state.range(0))));
  for (auto _ : state) {
    StatusOr<Edtd> edtd = ImportXsd(xml);
    benchmark::DoNotOptimize(edtd);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["source_bytes"] = static_cast<double>(xml.size());
}

void BM_ImportExpanded(benchmark::State& state) {
  DfaXsd xsd = CountedXsd(static_cast<int>(state.range(0)));
  xsd.content_source.clear();
  const std::string xml = ExportXsd(xsd);
  for (auto _ : state) {
    StatusOr<Edtd> edtd = ImportXsd(xml);
    benchmark::DoNotOptimize(edtd);
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["source_bytes"] = static_cast<double>(xml.size());
}

BENCHMARK(BM_CompileCounted)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ExportCountPreserving)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ExportExpanded)->Arg(4)->Arg(16)->Arg(64)->Arg(256);
BENCHMARK(BM_ImportCountPreserving)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(BM_ImportExpanded)->Arg(4)->Arg(16)->Arg(64);

}  // namespace
}  // namespace stap
