// Experiment E11 (the EDC motivation, Section 1 / [21]): one-pass
// top-down XSD validation versus general EDTD (tree-automaton style)
// membership on the same documents. The shape to observe: both scale
// linearly in document size, with the XSD pass enjoying a significantly
// smaller constant — the practical payoff of the EDC constraint.
#include <benchmark/benchmark.h>

#include <random>

#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/streaming.h"

namespace stap {
namespace {

Edtd CatalogSchema() {
  SchemaBuilder builder;
  builder.AddType("Store", "store", "Dept+");
  builder.AddType("Dept", "dept", "Name Item*");
  builder.AddType("Name", "name", "%");
  builder.AddType("Item", "item", "Name Price Review*");
  builder.AddType("Price", "price", "%");
  builder.AddType("Review", "review", "Name?");
  builder.AddStart("Store");
  return builder.Build();
}

// A document with roughly `target_nodes` nodes.
Tree MakeDocument(int target_nodes, std::mt19937* rng) {
  DfaXsd xsd = DfaXsdFromStEdtd(ReduceEdtd(CatalogSchema()));
  Tree document = *SampleTree(xsd, rng, 4);
  // Grow by appending departments until large enough.
  Alphabet& s = xsd.sigma;
  int dept = s.Find("dept"), name = s.Find("name"), item = s.Find("item"),
      price = s.Find("price"), review = s.Find("review");
  Tree item_tree(item, {Tree(name), Tree(price), Tree(review, {Tree(name)})});
  while (document.NumNodes() < target_nodes) {
    Tree dept_tree(dept, {Tree(name)});
    for (int i = 0; i < 8; ++i) dept_tree.children.push_back(item_tree);
    document.children.push_back(std::move(dept_tree));
  }
  return document;
}

void BM_ValidateXsdOnePass(benchmark::State& state) {
  std::mt19937 rng(1);
  Edtd schema = ReduceEdtd(CatalogSchema());
  DfaXsd xsd = DfaXsdFromStEdtd(schema);
  Tree document = MakeDocument(static_cast<int>(state.range(0)), &rng);
  bool ok = false;
  for (auto _ : state) {
    ok = xsd.Accepts(document);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * document.NumNodes());
  state.counters["nodes"] = document.NumNodes();
  state.counters["valid"] = ok ? 1 : 0;
}

void BM_ValidateStreaming(benchmark::State& state) {
  std::mt19937 rng(1);
  Edtd schema = ReduceEdtd(CatalogSchema());
  DfaXsd xsd = DfaXsdFromStEdtd(schema);
  Tree document = MakeDocument(static_cast<int>(state.range(0)), &rng);
  bool ok = false;
  for (auto _ : state) {
    ok = ValidateStreaming(xsd, document);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * document.NumNodes());
  state.counters["nodes"] = document.NumNodes();
  state.counters["valid"] = ok ? 1 : 0;
}

void BM_ValidateEdtdBottomUp(benchmark::State& state) {
  std::mt19937 rng(1);
  Edtd schema = ReduceEdtd(CatalogSchema());
  Tree document = MakeDocument(static_cast<int>(state.range(0)), &rng);
  bool ok = false;
  for (auto _ : state) {
    ok = schema.Accepts(document);
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(state.iterations() * document.NumNodes());
  state.counters["nodes"] = document.NumNodes();
  state.counters["valid"] = ok ? 1 : 0;
}

BENCHMARK(BM_ValidateXsdOnePass)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ValidateStreaming)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ValidateEdtdBottomUp)
    ->RangeMultiplier(4)
    ->Range(64, 16384)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace stap
