// Experiment E8 (Lemma 4.6 / Theorem 4.8): the non-violating set
// nv(D2, D1) and the maximal lower approximation L(D1) ∪ nv(D2, D1) of a
// union fixing one disjunct, in polynomial time. Instances: the paper's
// Theorem 4.3 pair plus random single-type pairs of growing size.
#include <benchmark/benchmark.h>

#include <random>

#include "stap/approx/nv.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"

namespace stap {
namespace {

void BM_LowerUnionPaperExample(benchmark::State& state) {
  auto [d1, d2] = Theorem43Schemas();
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd lower = LowerUnionFixingFirst(d1, d2);
    type_size = lower.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["type_size"] = static_cast<double>(type_size);
}

void BM_NonViolatingRandom(benchmark::State& state) {
  const int num_types = static_cast<int>(state.range(0));
  std::mt19937 rng(9001 + num_types);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = num_types;
  Edtd d1 = RandomStEdtd(&rng, params);
  Edtd d2 = RandomStEdtd(&rng, params);
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd nv = NonViolating(d1, d2);
    type_size = nv.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["types_d1"] = d1.num_types();
  state.counters["types_d2"] = d2.num_types();
  state.counters["nv_type_size"] = static_cast<double>(type_size);
}

void BM_LowerUnionRandom(benchmark::State& state) {
  const int num_types = static_cast<int>(state.range(0));
  std::mt19937 rng(9001 + num_types);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = num_types;
  Edtd d1 = RandomStEdtd(&rng, params);
  Edtd d2 = RandomStEdtd(&rng, params);
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd lower = LowerUnionFixingFirst(d1, d2);
    type_size = lower.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["lower_type_size"] = static_cast<double>(type_size);
}

BENCHMARK(BM_LowerUnionPaperExample)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_NonViolatingRandom)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_LowerUnionRandom)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
