// Experiment E21: schema-guided determinization (automata/determinize.h)
// A/B'd against the dense subset construction on the paper's families.
// The headline number is not wall time but `dfa_states` — the
// determinize.states_created metrics counter delta per construction —
// since the point of the joint (context × subset) worklist is to never
// materialize subsets the ambient schema kills. Cases:
//   * Theorem 3.2's (a+b)*a(a+b)^n type automaton, dense (2^n states)
//     vs guided by BoundedLetterContext (O(n·k) pairs): the >= 2x case.
//   * The same family under self-context (context = the NFA itself, an
//     exact-mode superset): honest zero-pruning data for DESIGN.md —
//     the joint construction only ever pays overhead here.
//   * Random EDTD type automata, dense vs guided by a bounded-letter
//     ambient corpus restriction (the caller-supplied-context case).
//   * NFA inclusion via the guided oracle vs the antichain engine.
#include <benchmark/benchmark.h>

#include <random>

#include "stap/automata/determinize.h"
#include "stap/automata/inclusion.h"
#include "stap/automata/ops.h"
#include "stap/base/metrics.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/type_automaton.h"

namespace stap {
namespace {

int64_t StatesCreated() {
  return GetCounter("determinize.states_created")->value();
}

void BM_DenseTheorem32(benchmark::State& state) {
  TypeAutomaton ta = BuildTypeAutomaton(Theorem32Family(
      static_cast<int>(state.range(0))));
  const int64_t before = StatesCreated();
  int64_t iters = 0;
  for (auto _ : state) {
    Dfa dfa = Determinize(ta.nfa);
    benchmark::DoNotOptimize(dfa);
    ++iters;
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["dfa_states"] =
      static_cast<double>(StatesCreated() - before) /
      static_cast<double>(iters);
}

void BM_GuidedTheorem32(benchmark::State& state) {
  TypeAutomaton ta = BuildTypeAutomaton(Theorem32Family(
      static_cast<int>(state.range(0))));
  // Ambient schema: documents with at most k = 3 occurrences of `b`.
  Nfa context = BoundedLetterContext(/*symbol=*/1, /*max_count=*/3,
                                     ta.nfa.num_symbols());
  const int64_t before = StatesCreated();
  int64_t iters = 0;
  int64_t pruned = 0;
  for (auto _ : state) {
    SchemaDeterminizeStats stats;
    StatusOr<Dfa> dfa = DeterminizeUnderSchema(
        ta.nfa, context, nullptr, nullptr, nullptr, &stats);
    benchmark::DoNotOptimize(dfa);
    pruned = stats.pruned_states;
    ++iters;
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["dfa_states"] =
      static_cast<double>(StatesCreated() - before) /
      static_cast<double>(iters);
  state.counters["pruned_subsets"] = static_cast<double>(pruned);
}

// Same family under self-context: L(context) = L(nfa) is a superset of
// the target language, so the context half can never die first and
// nothing is pruned — the degenerate case DESIGN.md warns about. The
// joint construction pays pair bookkeeping for the same state count.
void BM_GuidedTheorem32SupersetContext(benchmark::State& state) {
  TypeAutomaton ta = BuildTypeAutomaton(Theorem32Family(
      static_cast<int>(state.range(0))));
  const Nfa& context = ta.nfa;
  const int64_t before = StatesCreated();
  int64_t iters = 0;
  int64_t pruned = 0;
  for (auto _ : state) {
    SchemaDeterminizeStats stats;
    StatusOr<Dfa> dfa = DeterminizeUnderSchema(
        ta.nfa, context, nullptr, nullptr, nullptr, &stats);
    benchmark::DoNotOptimize(dfa);
    pruned = stats.pruned_states;
    ++iters;
  }
  state.counters["n"] = static_cast<double>(state.range(0));
  state.counters["dfa_states"] =
      static_cast<double>(StatesCreated() - before) /
      static_cast<double>(iters);
  state.counters["pruned_subsets"] = static_cast<double>(pruned);
}

Nfa RandomEdtdTypeNfa(int num_types) {
  std::mt19937 rng(9090 + num_types);
  RandomSchemaParams params;
  params.num_symbols = 4;
  params.num_types = num_types;
  return BuildTypeAutomaton(RandomEdtd(&rng, params)).nfa;
}

void BM_DenseRandomEdtd(benchmark::State& state) {
  Nfa nfa = RandomEdtdTypeNfa(static_cast<int>(state.range(0)));
  const int64_t before = StatesCreated();
  int64_t iters = 0;
  for (auto _ : state) {
    Dfa dfa = Determinize(nfa);
    benchmark::DoNotOptimize(dfa);
    ++iters;
  }
  state.counters["types"] = static_cast<double>(state.range(0));
  state.counters["dfa_states"] =
      static_cast<double>(StatesCreated() - before) /
      static_cast<double>(iters);
}

// Ambient corpus restriction: vertical paths with at most 2 occurrences
// of symbol 0 — a caller-supplied context, the restricted-mode use case.
void BM_GuidedRandomEdtd(benchmark::State& state) {
  Nfa nfa = RandomEdtdTypeNfa(static_cast<int>(state.range(0)));
  Nfa context = BoundedLetterContext(/*symbol=*/0, /*max_count=*/2,
                                     nfa.num_symbols());
  const int64_t before = StatesCreated();
  int64_t iters = 0;
  int64_t pruned = 0;
  for (auto _ : state) {
    SchemaDeterminizeStats stats;
    StatusOr<Dfa> dfa = DeterminizeUnderSchema(
        nfa, context, nullptr, nullptr, nullptr, &stats);
    benchmark::DoNotOptimize(dfa);
    pruned = stats.pruned_states;
    ++iters;
  }
  state.counters["types"] = static_cast<double>(state.range(0));
  state.counters["dfa_states"] =
      static_cast<double>(StatesCreated() - before) /
      static_cast<double>(iters);
  state.counters["pruned_subsets"] = static_cast<double>(pruned);
}

std::pair<Nfa, Nfa> InclusionInstance(int num_states) {
  std::mt19937 rng(7700 + num_states);
  Nfa a = RandomNfa(&rng, num_states, 3);
  Nfa b = RandomNfa(&rng, num_states, 3);
  return {a, NfaUnion(b, a)};  // positive instance: b ⊇ a
}

void BM_InclusionAntichain(benchmark::State& state) {
  auto [a, b] = InclusionInstance(static_cast<int>(state.range(0)));
  bool included = false;
  for (auto _ : state) {
    included = NfaIncludedInNfa(a, b);
    benchmark::DoNotOptimize(included);
  }
  state.counters["states"] = static_cast<double>(state.range(0));
  state.counters["included"] = included ? 1 : 0;
}

void BM_InclusionSchemaGuided(benchmark::State& state) {
  auto [a, b] = InclusionInstance(static_cast<int>(state.range(0)));
  bool included = false;
  for (auto _ : state) {
    StatusOr<bool> result = NfaIncludedInNfaViaSchemaDeterminize(a, b);
    included = result.ok() && *result;
    benchmark::DoNotOptimize(included);
  }
  state.counters["states"] = static_cast<double>(state.range(0));
  state.counters["included"] = included ? 1 : 0;
}

BENCHMARK(BM_DenseTheorem32)->DenseRange(8, 14, 2);
BENCHMARK(BM_GuidedTheorem32)->DenseRange(8, 14, 2);
BENCHMARK(BM_GuidedTheorem32SupersetContext)->DenseRange(8, 12, 2);
BENCHMARK(BM_DenseRandomEdtd)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_GuidedRandomEdtd)->Arg(8)->Arg(16)->Arg(32);
BENCHMARK(BM_InclusionAntichain)->Arg(8)->Arg(12);
BENCHMARK(BM_InclusionSchemaGuided)->Arg(8)->Arg(12);

}  // namespace
}  // namespace stap
