// Experiment E10 (reference [20]): minimizing the output XSDs — "optimal
// representations of optimal approximations" — in polynomial time.
// Instances: the (already quadratic-sized) union approximations of the
// Theorem 3.6 family and random schemas with duplicated structure.
#include <benchmark/benchmark.h>

#include <random>

#include "stap/approx/upper_boolean.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/minimize.h"

namespace stap {
namespace {

void BM_MinimizeUnionOutput(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  auto [d1, d2] = Theorem36Family(n);
  DfaXsd upper = UpperUnion(d1, d2);
  int64_t before = upper.type_size();
  int64_t after = 0;
  for (auto _ : state) {
    DfaXsd minimized = MinimizeXsd(upper);
    after = minimized.type_size();
    benchmark::DoNotOptimize(after);
  }
  state.counters["n"] = n;
  state.counters["types_before"] = static_cast<double>(before);
  state.counters["types_after"] = static_cast<double>(after);
}

void BM_MinimizeRandom(benchmark::State& state) {
  const int num_types = static_cast<int>(state.range(0));
  std::mt19937 rng(31 + num_types);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = num_types;
  DfaXsd xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
  int64_t after = 0;
  for (auto _ : state) {
    DfaXsd minimized = MinimizeXsd(xsd);
    after = minimized.type_size();
    benchmark::DoNotOptimize(after);
  }
  state.counters["types_before"] = xsd.type_size();
  state.counters["types_after"] = static_cast<double>(after);
}

BENCHMARK(BM_MinimizeUnionOutput)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MinimizeRandom)
    ->RangeMultiplier(2)
    ->Range(4, 64)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
