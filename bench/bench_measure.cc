// Experiment E24: precision analytics cost and the precision-vs-size
// curves behind `stap measure`.
//
// Three questions: (1) what the exact profile DP costs as depth grows on
// a nondeterministic schema, versus the binary-encoding DP that pays an
// up-front DeterminizeBta instead (BM_CountProfile / BM_CountBinary);
// (2) what a full measure run — schema count, both approximations, both
// intersection counts — costs on the counted family as the occurrence
// bounds grow (BM_MeasureCounted, the E24 headline); (3) what the
// size-indexed tables and an exact-weight uniform draw cost
// (BM_SizeTables / BM_SampleUniform). `log2_count` counters report the
// magnitude being computed, so the JSON records the precision curves
// alongside the timings.
#include <benchmark/benchmark.h>

#include <random>

#include "stap/count/binary.h"
#include "stap/count/counter.h"
#include "stap/count/measure.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"

namespace stap {
namespace {

// A fixed nondeterministic workload: the Theorem 3.2 family, whose upper
// approximation is exponentially larger than the schema — the setting
// measure exists to quantify.
Edtd NondeterministicSchema() { return ReduceEdtd(Theorem32Family(3)); }

void BM_CountProfile(benchmark::State& state) {
  const Edtd edtd = NondeterministicSchema();
  CountBounds bounds;
  bounds.max_depth = static_cast<int>(state.range(0));
  bounds.max_width = 3;
  double log2_count = 0;
  for (auto _ : state) {
    StatusOr<std::vector<CountValue>> counts =
        CountEdtdByDepth(edtd, bounds, nullptr);
    if (!counts.ok()) state.SkipWithError("count failed");
    log2_count = counts->back().Log2();
    benchmark::DoNotOptimize(counts);
  }
  state.counters["log2_count"] = log2_count;
}
BENCHMARK(BM_CountProfile)->DenseRange(4, 10, 2);

void BM_CountBinary(benchmark::State& state) {
  const Edtd edtd = NondeterministicSchema();
  CountBounds bounds;
  bounds.max_depth = static_cast<int>(state.range(0));
  bounds.max_width = 3;
  for (auto _ : state) {
    StatusOr<std::vector<CountValue>> counts =
        CountEdtdByDepthViaBinary(edtd, bounds, nullptr);
    if (!counts.ok()) state.SkipWithError("count failed");
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_CountBinary)->DenseRange(4, 10, 2);

// The E24 headline: full precision analytics on the counted family. The
// depth-4 slice covers every document shape the family admits, so
// `log2_schema` traces |L(S)| while n scales the occurrence bounds.
void BM_MeasureCounted(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Edtd edtd = CountedFamily(n, 2 * n);
  MeasureOptions options;
  options.bounds.max_depth = 4;
  options.bounds.max_width = 4 * n + 2;
  double log2_schema = 0;
  double precision = 1.0;
  for (auto _ : state) {
    StatusOr<MeasureResult> result = MeasureSchema(edtd, options, nullptr);
    if (!result.ok()) state.SkipWithError("measure failed");
    log2_schema = result->schema.back().Log2();
    precision = result->UpperPrecision(options.bounds.max_depth - 1);
    benchmark::DoNotOptimize(result);
  }
  state.counters["log2_schema"] = log2_schema;
  state.counters["upper_precision"] = precision;
}
BENCHMARK(BM_MeasureCounted)->DenseRange(1, 7, 2);

void BM_SizeTables(benchmark::State& state) {
  std::mt19937 rng(7);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = 5;
  params.repeat_percent = 50;
  const DfaXsd xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
  const int max_size = static_cast<int>(state.range(0));
  for (auto _ : state) {
    StatusOr<XsdSizeTables> tables =
        BuildXsdSizeTables(xsd, max_size, nullptr);
    if (!tables.ok()) state.SkipWithError("tables failed");
    benchmark::DoNotOptimize(tables);
  }
}
BENCHMARK(BM_SizeTables)->RangeMultiplier(2)->Range(8, 64);

void BM_SampleUniform(benchmark::State& state) {
  std::mt19937 rng(7);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = 5;
  params.repeat_percent = 50;
  const int size = static_cast<int>(state.range(0));
  DfaXsd xsd;
  XsdSizeTables tables;
  // Retry schemas until one admits trees of the target size, so every
  // iteration below draws instead of returning nullopt.
  do {
    xsd = DfaXsdFromStEdtd(RandomStEdtd(&rng, params));
    StatusOr<XsdSizeTables> built = BuildXsdSizeTables(xsd, size, nullptr);
    if (!built.ok()) {
      state.SkipWithError("tables failed");
      return;
    }
    tables = *std::move(built);
  } while (tables.totals[size].IsZero());
  int64_t sampled = 0;
  for (auto _ : state) {
    std::optional<Tree> tree = SampleTreeUniform(xsd, tables, size, &rng);
    if (!tree.has_value()) state.SkipWithError("sampler returned nullopt");
    benchmark::DoNotOptimize(tree);
    ++sampled;
  }
  state.SetItemsProcessed(sampled);
}
BENCHMARK(BM_SampleUniform)->RangeMultiplier(2)->Range(8, 64);

}  // namespace
}  // namespace stap
