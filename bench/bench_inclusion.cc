// Experiment E6 (Lemma 3.3): inclusion of an EDTD in a single-type EDTD
// in polynomial time, against the generic EXPTIME route (binary encoding
// + bottom-up determinization + product emptiness). Both algorithms run
// on the same instances; the paper's claim is the widening gap.
#include <benchmark/benchmark.h>

#include <random>

#include "stap/approx/inclusion.h"
#include "stap/approx/upper_boolean.h"
#include "stap/gen/random.h"
#include "stap/schema/single_type.h"
#include "stap/schema/reduce.h"
#include "stap/treeauto/exact.h"

namespace stap {
namespace {

std::pair<Edtd, Edtd> MakeInstance(int num_types) {
  std::mt19937 rng(4242 + num_types);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = num_types;
  Edtd d1 = RandomStEdtd(&rng, params);
  Edtd d2 = RandomStEdtd(&rng, params);
  return AlignAlphabets(d1, d2);
}

void BM_InclusionPtime(benchmark::State& state) {
  auto [d1, d2] = MakeInstance(static_cast<int>(state.range(0)));
  bool included = false;
  for (auto _ : state) {
    included = IncludedInSingleType(d1, d2);
    benchmark::DoNotOptimize(included);
  }
  state.counters["types"] = static_cast<double>(state.range(0));
  state.counters["included"] = included ? 1 : 0;
}

// Positive instances (the test must walk the whole product): d1 against
// the upper approximation of d1 ∪ d2, which contains d1 by construction.
void BM_InclusionPtimePositive(benchmark::State& state) {
  auto [d1, d2] = MakeInstance(static_cast<int>(state.range(0)));
  Edtd superset = StEdtdFromDfaXsd(UpperUnion(d1, d2));
  bool included = false;
  for (auto _ : state) {
    included = IncludedInSingleType(d1, superset);
    benchmark::DoNotOptimize(included);
  }
  state.counters["types"] = static_cast<double>(state.range(0));
  state.counters["included"] = included ? 1 : 0;
}

void BM_InclusionExact(benchmark::State& state) {
  auto [d1, d2] = MakeInstance(static_cast<int>(state.range(0)));
  Edtd r1 = ReduceEdtd(d1);
  Edtd r2 = ReduceEdtd(d2);
  bool included = false;
  for (auto _ : state) {
    included = EdtdIncludedInExact(r1, r2);
    benchmark::DoNotOptimize(included);
  }
  state.counters["types"] = static_cast<double>(state.range(0));
  state.counters["included"] = included ? 1 : 0;
}

BENCHMARK(BM_InclusionPtime)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InclusionPtimePositive)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InclusionExact)
    ->RangeMultiplier(2)
    ->Range(2, 8)  // the exact route stops scaling well before 16
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
