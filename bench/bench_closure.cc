// Ablation benchmarks for the design choices DESIGN.md calls out:
//   * the exchange-closure engine (cost vs. seed count, and the effect of
//     the early-exit stop predicate used by the Section 4.4 checks);
//   * content-model canonicalization inside Construction 3.1 (minimize vs.
//     determinize-only).
#include <benchmark/benchmark.h>

#include <random>

#include "stap/approx/closure.h"
#include "stap/approx/upper.h"
#include "stap/gen/families.h"
#include "stap/gen/random.h"
#include "stap/schema/reduce.h"
#include "stap/tree/enumerate.h"

namespace stap {
namespace {

// Seeds: members of a random finite EDTD within bounds, capped.
std::vector<Tree> ClosureSeeds(int want) {
  std::mt19937 rng(11 + want);
  RandomSchemaParams params;
  params.num_symbols = 2;
  params.num_types = 3;
  for (int attempt = 0; attempt < 50; ++attempt) {
    Edtd schema = RandomFiniteEdtd(&rng, params);
    std::vector<Tree> members;
    for (const Tree& tree : EnumerateTrees({3, 2, schema.sigma.size()})) {
      if (schema.Accepts(tree)) {
        members.push_back(tree);
        if (static_cast<int>(members.size()) == want) return members;
      }
    }
    if (static_cast<int>(members.size()) >= want / 2 && !members.empty()) {
      return members;
    }
  }
  return {Tree(0)};
}

void BM_ClosureFixpoint(benchmark::State& state) {
  std::vector<Tree> seeds = ClosureSeeds(static_cast<int>(state.range(0)));
  ClosureOptions options;
  options.max_trees = 3000;
  int64_t closure_size = 0;
  for (auto _ : state) {
    ClosureResult result = CloseUnderExchange(seeds, options);
    closure_size = static_cast<int64_t>(result.trees.size());
    benchmark::DoNotOptimize(closure_size);
  }
  state.counters["seeds"] = static_cast<double>(seeds.size());
  state.counters["closure_size"] = static_cast<double>(closure_size);
}

void BM_ClosureWithStopPredicate(benchmark::State& state) {
  std::vector<Tree> seeds = ClosureSeeds(static_cast<int>(state.range(0)));
  // A predicate that never fires: measures the per-member overhead of
  // the early-exit hook relative to BM_ClosureFixpoint.
  ClosureOptions options;
  options.max_trees = 3000;
  options.stop_predicate = [](const Tree& tree) {
    return tree.NumNodes() < 0;
  };
  int64_t closure_size = 0;
  for (auto _ : state) {
    ClosureResult result = CloseUnderExchange(seeds, options);
    closure_size = static_cast<int64_t>(result.trees.size());
    benchmark::DoNotOptimize(closure_size);
  }
  state.counters["seeds"] = static_cast<double>(seeds.size());
  state.counters["closure_size"] = static_cast<double>(closure_size);
}

Edtd AblationSchema(int num_types) {
  std::mt19937 rng(271828 + num_types);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = num_types;
  params.content_breadth = 3;
  return RandomEdtd(&rng, params);
}

void BM_UpperWithContentMinimization(benchmark::State& state) {
  Edtd edtd = AblationSchema(static_cast<int>(state.range(0)));
  int64_t size = 0;
  for (auto _ : state) {
    DfaXsd upper = MinimalUpperApproximation(edtd);
    size = upper.Size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["xsd_size"] = static_cast<double>(size);
}

void BM_UpperWithoutContentMinimization(benchmark::State& state) {
  Edtd edtd = AblationSchema(static_cast<int>(state.range(0)));
  UpperOptions options;
  options.minimize_content = false;
  int64_t size = 0;
  for (auto _ : state) {
    DfaXsd upper = MinimalUpperApproximation(edtd, options);
    size = upper.Size();
    benchmark::DoNotOptimize(size);
  }
  state.counters["xsd_size"] = static_cast<double>(size);
}

BENCHMARK(BM_ClosureFixpoint)
    ->RangeMultiplier(2)
    ->Range(4, 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ClosureWithStopPredicate)
    ->RangeMultiplier(2)
    ->Range(4, 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UpperWithContentMinimization)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_UpperWithoutContentMinimization)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
