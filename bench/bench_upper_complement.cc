// Experiment E4 (Theorem 3.9): the minimal upper approximation of the
// complement of an XSD is computable in polynomial time — the subset
// construction on D_c's type automaton only ever reaches subsets with at
// most two elements. The counters report how the output scales with the
// input type count on random schemas (a polynomial, not exponential,
// curve).
#include <benchmark/benchmark.h>

#include <random>

#include "stap/approx/upper_boolean.h"
#include "stap/gen/random.h"
#include "stap/schema/minimize.h"

namespace stap {
namespace {

void BM_UpperComplement(benchmark::State& state) {
  const int num_types = static_cast<int>(state.range(0));
  std::mt19937 rng(12345 + num_types);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = num_types;
  Edtd schema = RandomStEdtd(&rng, params);
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd upper = UpperComplement(schema);
    type_size = upper.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["input_types"] = schema.num_types();
  state.counters["input_size"] = static_cast<double>(schema.Size());
  state.counters["type_size"] = static_cast<double>(type_size);
}

BENCHMARK(BM_UpperComplement)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
