// Load generator for the `stap serve` daemon.
//
// Phase 1 (throughput): N client threads each hold one connection and
// keep a pipeline window of validate requests in flight against a warm
// registered schema; per-request latency is sampled send-to-receive and
// reported as quantiles, throughput as docs/sec over the measured wall
// time. Phase 2 (stampede): K fresh connections all reference the same
// cold inline schema at once; the run asserts the compile cache
// published exactly one compilation per content model (cache.insert
// delta) and that every request succeeded — the exactly-once stampede
// guard, measured rather than assumed.
//
// By default the server runs in-process on an ephemeral port (the whole
// bench is self-contained, which is what the CI smoke wants). Point it
// at an external daemon with --port/--host, in which case the stampede
// cache assertion is skipped (the cache lives in the daemon's process).
//
//   bench_serve [--clients=N] [--requests=N] [--pipeline=W]
//               [--stampede-clients=K] [--no-stampede] [--schema=REF]
//               [--host=H --port=P] [--json=FILE]
//               [--access-log=FILE] [--slow-ms=N] [--doc-books=N]
//               [--check-p99]
//
// --access-log / --slow-ms configure the in-process server's request
// observability (the A/B overhead comparison in EXPERIMENTS.md E23).
// --doc-books=N fattens the validated document to N book elements so
// service time dominates the RTT. --check-p99 cross-checks the server's
// /statusz rolling p99 against the client-measured p99: both are mapped
// to power-of-two latency buckets and the run fails if they differ by
// more than one bucket. Only meaningful in-process with --pipeline=1
// (with a deeper pipeline the client measures queueing, not service).
//
// --benchmark_* flags are accepted and ignored so the CI loop that
// smoke-runs every binary in build/bench/ can pass its usual arguments.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stap/base/compile_cache.h"
#include "stap/base/metrics.h"
#include "stap/io/artifact.h"
#include "stap/serve/client.h"
#include "stap/serve/server.h"

namespace stap {
namespace {

constexpr const char kBenchSchema[] =
    "start Lib\n"
    "type Lib     : library -> Book*\n"
    "type Book    : book    -> Title Chapter+\n"
    "type Title   : title   -> %\n"
    "type Chapter : chapter -> (Section | %)\n"
    "type Section : section -> %\n";

// A distinct schema (same shape, different type names) for the stampede
// phase, so its content models are cold even after the warm-up phase.
constexpr const char kStampedeSchema[] =
    "start Shelf\n"
    "type Shelf   : shelf   -> Tome*\n"
    "type Tome    : tome    -> Leaf+\n"
    "type Leaf    : leaf    -> %\n";

constexpr const char kStampedeDocument[] = "<shelf><tome><leaf/></tome></shelf>";

struct Config {
  std::string host = "127.0.0.1";
  int port = 0;  // 0 = spawn the server in-process
  int clients = 4;
  int requests = 2000;  // per client
  int pipeline = 32;
  int stampede_clients = 32;
  bool stampede = true;
  std::string json_path;
  // Schema ref for throughput requests. The in-process server registers
  // the bench schema as "@bench"; point this at an external daemon's
  // schema (e.g. --schema=@lib) when using --port.
  std::string schema_ref = "@bench";
  // Observability knobs for the in-process server (ignored with --port).
  std::string access_log_path;
  int slow_ms = 0;
  // Books per validated document; larger documents shift the latency
  // budget from the socket round-trip to actual validation work.
  int doc_books = 1;
  bool check_p99 = false;
  // The document every throughput request validates (built from
  // doc_books after flag parsing).
  std::string document;
};

struct ClientStats {
  std::vector<double> latencies_us;
  int64_t ok = 0;
  int64_t failed = 0;
};

// Releases all load threads at once so the measured window starts with
// every connection established.
class StartGate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return open_; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

void RunClient(const Config& config, int thread_index, StartGate* gate,
               ClientStats* stats) {
  ServeClient client;
  if (!client.Connect(config.host, config.port).ok()) {
    stats->failed = config.requests;
    return;
  }
  gate->Wait();
  using Clock = std::chrono::steady_clock;
  std::vector<Clock::time_point> sent(
      static_cast<size_t>(config.requests));
  stats->latencies_us.reserve(config.requests);
  int next_send = 0;
  int next_receive = 0;
  const uint64_t id_base =
      static_cast<uint64_t>(thread_index) * 1000000ull;
  while (next_receive < config.requests) {
    while (next_send < config.requests &&
           next_send - next_receive < config.pipeline) {
      ServeRequest request;
      request.id = id_base + static_cast<uint64_t>(next_send);
      request.op = Opcode::kValidate;
      request.schema_ref = config.schema_ref;
      request.payload = config.document;
      sent[next_send] = Clock::now();
      if (!client.Send(request).ok()) {
        stats->failed += config.requests - next_receive;
        return;
      }
      ++next_send;
    }
    StatusOr<ServeResponse> response = client.Receive();
    if (!response.ok()) {
      stats->failed += config.requests - next_receive;
      return;
    }
    const double us = std::chrono::duration<double, std::micro>(
                          Clock::now() - sent[next_receive])
                          .count();
    stats->latencies_us.push_back(us);
    if (response->code == ResponseCode::kOk) {
      ++stats->ok;
    } else {
      ++stats->failed;
    }
    ++next_receive;
  }
}

double Quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0;
  const size_t index = static_cast<size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

bool ParseIntFlag(const std::string& arg, const char* prefix, int* out) {
  if (arg.rfind(prefix, 0) != 0) return false;
  const std::string text = arg.substr(std::strlen(prefix));
  char* end = nullptr;
  long parsed = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || parsed < 0 ||
      parsed > 1000000000) {
    std::cerr << "bad flag value: " << arg << "\n";
    std::exit(2);
  }
  *out = static_cast<int>(parsed);
  return true;
}

int Main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseIntFlag(arg, "--port=", &config.port) ||
        ParseIntFlag(arg, "--clients=", &config.clients) ||
        ParseIntFlag(arg, "--requests=", &config.requests) ||
        ParseIntFlag(arg, "--pipeline=", &config.pipeline) ||
        ParseIntFlag(arg, "--stampede-clients=", &config.stampede_clients) ||
        ParseIntFlag(arg, "--slow-ms=", &config.slow_ms) ||
        ParseIntFlag(arg, "--doc-books=", &config.doc_books)) {
      continue;
    }
    if (arg.rfind("--host=", 0) == 0) {
      config.host = arg.substr(7);
    } else if (arg == "--no-stampede") {
      config.stampede = false;
    } else if (arg == "--check-p99") {
      config.check_p99 = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      config.json_path = arg.substr(7);
    } else if (arg.rfind("--schema=", 0) == 0) {
      config.schema_ref = arg.substr(9);
    } else if (arg.rfind("--access-log=", 0) == 0) {
      config.access_log_path = arg.substr(13);
    } else if (arg.rfind("--benchmark_", 0) == 0) {
      // Ignored: lets the generic bench smoke loop pass its flags.
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      return 2;
    }
  }
  config.pipeline = std::max(config.pipeline, 1);
  config.doc_books = std::max(config.doc_books, 1);
  {
    std::string body;
    for (int b = 0; b < config.doc_books; ++b) {
      body +=
          "<book><title/><chapter/><chapter><section/></chapter></book>";
    }
    config.document = "<library>" + body + "</library>";
  }

  // In-process server unless --port points elsewhere.
  std::unique_ptr<Server> server;
  const bool in_process = config.port == 0;
  if (config.check_p99 && (!in_process || config.pipeline != 1)) {
    std::cerr << "--check-p99 requires the in-process server and "
                 "--pipeline=1\n";
    return 2;
  }
  if (in_process) {
    ServeOptions options;
    options.port = 0;
    options.max_connections =
        config.clients + config.stampede_clients + 8;
    options.access_log_path = config.access_log_path;
    options.slow_request_ms = config.slow_ms;
    server = std::make_unique<Server>(std::move(options));
    Status started = server->Start();
    if (!started.ok()) {
      std::cerr << "cannot start in-process server: " << started << "\n";
      return 1;
    }
    StatusOr<CompiledSchema> bench =
        CompileSchema(kBenchSchema, CompileCache::Global());
    if (!bench.ok()) {
      std::cerr << "cannot compile the bench schema: " << bench.status()
                << "\n";
      return 1;
    }
    SchemaMap schemas;
    schemas["bench"] =
        std::make_shared<const CompiledSchema>(std::move(*bench));
    server->registry()->Swap(std::move(schemas));
    config.port = server->port();
  }

  // --- phase 1: pipelined throughput -------------------------------
  std::vector<ClientStats> stats(config.clients);
  std::vector<std::thread> threads;
  StartGate gate;
  threads.reserve(config.clients);
  for (int c = 0; c < config.clients; ++c) {
    threads.emplace_back(RunClient, std::cref(config), c, &gate, &stats[c]);
  }
  using Clock = std::chrono::steady_clock;
  gate.Open();
  const Clock::time_point start = Clock::now();
  for (std::thread& thread : threads) thread.join();
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  std::vector<double> latencies;
  int64_t ok = 0;
  int64_t failed = 0;
  for (const ClientStats& s : stats) {
    latencies.insert(latencies.end(), s.latencies_us.begin(),
                     s.latencies_us.end());
    ok += s.ok;
    failed += s.failed;
  }
  std::sort(latencies.begin(), latencies.end());
  double sum = 0;
  for (double us : latencies) sum += us;
  const double docs_per_sec =
      seconds > 0 ? static_cast<double>(ok + failed) / seconds : 0;

  // --- optional: server-vs-client p99 agreement ---------------------
  // The server's /statusz p99 comes from the rolling histogram's
  // power-of-two buckets; the client's p99 is exact. Both are reduced
  // to their bucket index and must land within one bucket of each
  // other — the accuracy contract the rolling windows advertise.
  double server_p99_us = 0;
  int p99_bucket_delta = 0;
  bool p99_agrees = true;
  if (config.check_p99) {
    StatusOr<std::string> statusz =
        HttpGetBody(config.host, config.port, "/statusz");
    if (!statusz.ok()) {
      std::cerr << "cannot fetch /statusz: " << statusz.status() << "\n";
      return 1;
    }
    const size_t pos = statusz->find("\"p99_us\":");
    if (pos == std::string::npos) {
      std::cerr << "/statusz has no p99_us field\n";
      return 1;
    }
    server_p99_us = std::strtod(statusz->c_str() + pos + 9, nullptr);
    const double client_p99_us = Quantile(latencies, 0.99);
    p99_bucket_delta = std::abs(Histogram::BucketFor(server_p99_us) -
                                Histogram::BucketFor(client_p99_us));
    p99_agrees = p99_bucket_delta <= 1;
  }

  // --- phase 2: cold compile stampede ------------------------------
  int64_t stampede_ok = 0;
  int64_t stampede_failed = 0;
  int64_t stampede_inserts = 0;
  const bool run_stampede = config.stampede && config.stampede_clients > 0;
  if (run_stampede) {
    Counter* inserts = GetCounter("cache.insert");
    const int64_t inserts0 = inserts->value();
    std::atomic<int64_t> s_ok{0};
    std::atomic<int64_t> s_failed{0};
    StartGate stampede_gate;
    std::vector<std::thread> herd;
    herd.reserve(config.stampede_clients);
    for (int c = 0; c < config.stampede_clients; ++c) {
      herd.emplace_back([&, c] {
        ServeClient client;
        if (!client.Connect(config.host, config.port).ok()) {
          s_failed.fetch_add(1);
          return;
        }
        stampede_gate.Wait();
        ServeRequest request;
        request.id = 5000000ull + static_cast<uint64_t>(c);
        request.op = Opcode::kValidate;
        request.schema_ref = kStampedeSchema;  // inline text: cold compile
        request.payload = kStampedeDocument;
        StatusOr<ServeResponse> response = client.Call(request);
        if (response.ok() && response->code == ResponseCode::kOk) {
          s_ok.fetch_add(1);
        } else {
          s_failed.fetch_add(1);
        }
      });
    }
    stampede_gate.Open();
    for (std::thread& thread : herd) thread.join();
    stampede_ok = s_ok.load();
    stampede_failed = s_failed.load();
    stampede_inserts = inserts->value() - inserts0;
  }

  std::ostringstream json;
  json << "{\n"
       << "  \"clients\": " << config.clients << ",\n"
       << "  \"requests_per_client\": " << config.requests << ",\n"
       << "  \"pipeline\": " << config.pipeline << ",\n"
       << "  \"wall_seconds\": " << seconds << ",\n"
       << "  \"docs_per_sec\": " << docs_per_sec << ",\n"
       << "  \"ok\": " << ok << ",\n"
       << "  \"failed\": " << failed << ",\n"
       << "  \"latency_us\": {\"mean\": "
       << (latencies.empty() ? 0 : sum / static_cast<double>(latencies.size()))
       << ", \"p50\": " << Quantile(latencies, 0.5)
       << ", \"p90\": " << Quantile(latencies, 0.9)
       << ", \"p99\": " << Quantile(latencies, 0.99)
       << ", \"max\": " << (latencies.empty() ? 0 : latencies.back())
       << "},\n"
       << "  \"doc_books\": " << config.doc_books << ",\n"
       << "  \"access_log\": "
       << (config.access_log_path.empty() ? "false" : "true") << ",\n";
  if (config.check_p99) {
    json << "  \"server_p99_us\": " << server_p99_us << ",\n"
         << "  \"p99_bucket_delta\": " << p99_bucket_delta << ",\n";
  }
  json << "  \"stampede\": {\"clients\": "
       << (run_stampede ? config.stampede_clients : 0)
       << ", \"ok\": " << stampede_ok << ", \"failed\": " << stampede_failed
       << ", \"cache_inserts\": " << stampede_inserts << "}\n"
       << "}\n";
  std::cout << json.str();
  if (!config.json_path.empty()) {
    std::ofstream out(config.json_path);
    if (!out || !(out << json.str())) {
      std::cerr << "cannot write " << config.json_path << "\n";
      return 1;
    }
  }

  if (server != nullptr) server->Stop();

  if (failed != 0) {
    std::cerr << "FAIL: " << failed << " throughput requests failed\n";
    return 1;
  }
  if (config.check_p99 && !p99_agrees) {
    std::cerr << "FAIL: server p99 " << server_p99_us << "us vs client p99 "
              << Quantile(latencies, 0.99) << "us differ by "
              << p99_bucket_delta << " power-of-two buckets (allowed 1)\n";
    return 1;
  }
  if (run_stampede) {
    if (stampede_failed != 0) {
      std::cerr << "FAIL: " << stampede_failed << " stampede requests failed\n";
      return 1;
    }
    // The stampede schema has 3 content models; exactly-once means
    // exactly 3 cache publications however many clients raced. Only
    // assertable when the cache lives in this process.
    if (in_process && stampede_inserts != 3) {
      std::cerr << "FAIL: stampede published " << stampede_inserts
                << " compilations, expected exactly 3\n";
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) { return stap::Main(argc, argv); }
