// Experiment E14: the introduction's motivating workload on realistic
// document schemas — merging two publisher article schemas
// (DocBook-flavored and JATS-flavored), diffing schema versions, and
// validating against the merged XSD. The shapes to observe: all
// operations stay in the low-millisecond range and output sizes stay
// close to the sum of the inputs (the paper's "usable algorithms for
// real-world XSDs" conclusion).
#include <benchmark/benchmark.h>

#include <random>

#include "stap/approx/diff_report.h"
#include "stap/approx/upper_boolean.h"
#include "stap/base/check.h"
#include "stap/gen/random.h"
#include "stap/schema/builder.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/xsd_io.h"

namespace stap {
namespace {

// The examples/data schemas, inlined so the bench has no file
// dependencies.
Edtd DocbookLite() {
  SchemaBuilder b;
  b.AddType("Article", "article", "Info Section+");
  b.AddType("Info", "info", "Title Author+ Abstract?");
  b.AddType("Title", "title", "%");
  b.AddType("Author", "author", "PersonName Affiliation?");
  b.AddType("PersonName", "personname", "%");
  b.AddType("Affiliation", "affiliation", "%");
  b.AddType("Abstract", "abstract", "Para+");
  b.AddType("Section", "section", "Title Para* Subsection*");
  b.AddType("Subsection", "section2", "Title Para+");
  b.AddType("Para", "para", "(Emphasis | Link)*");
  b.AddType("Emphasis", "emphasis", "%");
  b.AddType("Link", "link", "%");
  b.AddStart("Article");
  return b.Build();
}

Edtd JatsLite() {
  SchemaBuilder b;
  b.AddType("Article", "article", "Front Body Back?");
  b.AddType("Front", "front", "Title Contrib+");
  b.AddType("Title", "title", "%");
  b.AddType("Contrib", "author", "PersonName");
  b.AddType("PersonName", "personname", "%");
  b.AddType("Body", "body", "Section+");
  b.AddType("Section", "section", "Title Para+");
  b.AddType("Para", "para", "(Emphasis | Xref)*");
  b.AddType("Emphasis", "emphasis", "%");
  b.AddType("Xref", "xref", "%");
  b.AddType("Back", "back", "RefList");
  b.AddType("RefList", "reflist", "Ref*");
  b.AddType("Ref", "ref", "%");
  b.AddStart("Article");
  return b.Build();
}

void BM_RealisticMerge(benchmark::State& state) {
  Edtd docbook = DocbookLite();
  Edtd jats = JatsLite();
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd merged = MinimizeXsd(UpperUnion(docbook, jats));
    type_size = merged.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["types_docbook"] = ReduceEdtd(docbook).num_types();
  state.counters["types_jats"] = ReduceEdtd(jats).num_types();
  state.counters["types_merged"] = static_cast<double>(type_size);
}

void BM_RealisticDiffReport(benchmark::State& state) {
  Edtd docbook = DocbookLite();
  Edtd jats = JatsLite();
  double incomparable = 0;
  for (auto _ : state) {
    SchemaDiffReport report = CompareSchemas(docbook, jats, 5, 4);
    incomparable =
        report.relation == SchemaRelation::kIncomparable ? 1.0 : 0.0;
    benchmark::DoNotOptimize(incomparable);
  }
  state.counters["relation_incomparable"] = incomparable;
}

void BM_RealisticExportImport(benchmark::State& state) {
  DfaXsd merged =
      MinimizeXsd(UpperUnion(DocbookLite(), JatsLite()));
  int64_t bytes = 0;
  for (auto _ : state) {
    std::string exported = ExportXsd(merged);
    StatusOr<Edtd> imported = ImportXsd(exported);
    STAP_CHECK(imported.ok());
    bytes = static_cast<int64_t>(exported.size());
    benchmark::DoNotOptimize(bytes);
  }
  state.counters["xsd_bytes"] = static_cast<double>(bytes);
}

void BM_RealisticValidation(benchmark::State& state) {
  DfaXsd merged =
      MinimizeXsd(UpperUnion(DocbookLite(), JatsLite()));
  std::mt19937 rng(5);
  std::vector<Tree> documents;
  for (int i = 0; i < 20; ++i) {
    documents.push_back(*SampleTree(merged, &rng, 6));
  }
  int64_t nodes = 0;
  for (const Tree& doc : documents) nodes += doc.NumNodes();
  for (auto _ : state) {
    bool all = true;
    for (const Tree& doc : documents) all = all && merged.Accepts(doc);
    benchmark::DoNotOptimize(all);
  }
  state.SetItemsProcessed(state.iterations() * nodes);
  state.counters["documents"] = static_cast<double>(documents.size());
  state.counters["total_nodes"] = static_cast<double>(nodes);
}

BENCHMARK(BM_RealisticMerge)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RealisticDiffReport)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RealisticExportImport)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_RealisticValidation)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace stap
