// Experiment E5 (Theorem 3.10): the minimal upper approximation of the
// difference of two XSDs in polynomial time. Random single-type pairs of
// growing size; the reachable subsets of D_c's type automaton again have
// at most two elements, so the cost curve stays polynomial.
#include <benchmark/benchmark.h>

#include <random>

#include "stap/approx/upper_boolean.h"
#include "stap/gen/random.h"

namespace stap {
namespace {

void BM_UpperDifference(benchmark::State& state) {
  const int num_types = static_cast<int>(state.range(0));
  std::mt19937 rng(777 + num_types);
  RandomSchemaParams params;
  params.num_symbols = 3;
  params.num_types = num_types;
  Edtd d1 = RandomStEdtd(&rng, params);
  Edtd d2 = RandomStEdtd(&rng, params);
  int64_t type_size = 0;
  for (auto _ : state) {
    DfaXsd diff = UpperDifference(d1, d2);
    type_size = diff.type_size();
    benchmark::DoNotOptimize(type_size);
  }
  state.counters["types_d1"] = d1.num_types();
  state.counters["types_d2"] = d2.num_types();
  state.counters["size_product"] =
      static_cast<double>(d1.Size()) * d2.Size();
  state.counters["type_size"] = static_cast<double>(type_size);
}

BENCHMARK(BM_UpperDifference)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace stap
