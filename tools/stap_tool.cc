// stap — command-line front end for the library.
//
//   stap validate <schema> <doc...>      validate XML documents (the schema
//                                        may be textual or a compiled
//                                        artifact; many docs fan out over
//                                        --jobs=N threads, report in input
//                                        order)
//   stap compile <schema> -o <artifact>  compile a schema to a binary
//                                        artifact for the warm serving path
//   stap check <schema>                  report schema properties
//   stap minimize <schema>               canonical minimal XSD
//   stap approx <schema>                 minimal upper XSD-approximation
//   stap merge <s1> <s2>                 upper approximation of the union
//   stap intersect <s1> <s2>             exact intersection
//   stap diff <s1> <s2>                  upper approximation of s1 \ s2
//   stap complement <schema>             upper approximation of the complement
//   stap lower <s1> <s2>                 maximal lower approx of the union
//                                        containing s1 (Theorem 4.8)
//   stap included <s1> <s2>              is L(s1) ⊆ L(s2)? (s2 single-type)
//   stap witness <s1> <s2>               a document in L(s1) \ L(s2)
//   stap types <schema> <doc.xml>        print the document's typing
//   stap report <s1> <s2>                full comparison report
//   stap sample <schema> [count]         sample random documents
//   stap count <schema> <depth> <width>  count documents within bounds
//   stap export <schema> [--repair-upa]  write a W3C-style .xsd document
//   stap import <schema.xsd>             read a W3C-style .xsd document
//   stap family <name> <n>               generate a paper lower-bound family
//   stap explain <schema>                approximate and print a per-phase
//                                        provenance table (sizes, wall ms)
//   stap serve [flags]                   long-running validation daemon:
//                                        binary validate/included/approx
//                                        requests over a length-prefixed
//                                        socket protocol, plus HTTP
//                                        /metrics and /healthz; runs until
//                                        SIGINT/SIGTERM, then drains and
//                                        exits 0
//
// Global flags (accepted anywhere on the command line):
//   --jobs=N             worker threads for batch validation (0 = one per
//                        hardware thread; default 1)
//   --budget-ms=N        wall-clock deadline for the command's kernels
//   --max-states=N       cap on created automaton/product states
//   --max-sets=N         cap on frontier/subset sets
//   --metrics-json[=F]   dump the metrics registry as JSON to file F
//                        (bare flag or F=- writes to stderr)
//   --metrics-prom[=F]   dump the metrics registry in Prometheus
//                        exposition format (bare flag or F=- → stderr)
//   --trace-json[=F]     record a Chrome trace-event session around the
//                        command and write it to F (bare/- → stderr);
//                        load the file in Perfetto or chrome://tracing
//
// A command stopped by the budget exits with code 3 (kResourceExhausted)
// after printing the exhaustion reason; the metrics dump still runs, so
// the partial work is observable.
//
// Schemas use the textual format of schema/text_format.h (docs/FORMAT.md)
// unless stated otherwise; results are printed in the same format.
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "stap/approx/inclusion.h"
#include "stap/base/budget.h"
#include "stap/base/compile_cache.h"
#include "stap/base/metrics.h"
#include "stap/io/artifact.h"
#include "stap/io/batch_validate.h"
#include "stap/base/trace.h"
#include "stap/gen/families.h"
#include "stap/approx/lower_check.h"
#include "stap/approx/nv.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/approx/diff_report.h"
#include "stap/approx/witness.h"
#include "stap/gen/random.h"
#include "stap/regex/bkw.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/count.h"
#include "stap/count/measure.h"
#include "stap/schema/text_format.h"
#include "stap/schema/typing.h"
#include "stap/schema/xsd_io.h"
#include "stap/schema/type_automaton.h"
#include "stap/schema/validate.h"
#include "stap/serve/client.h"
#include "stap/serve/server.h"
#include "stap/tree/xml.h"

namespace stap {
namespace {

int Usage() {
  std::cerr
      << "usage: stap <command> <args>\n"
         "  validate <schema> <doc...>    validate documents (schema text or\n"
         "                                compiled artifact; many docs fan\n"
         "                                out over --jobs=N threads)\n"
         "  compile <schema> -o <file>    compile a schema to an artifact\n"
         "  check <schema>                report schema properties\n"
         "  minimize <schema>             canonical minimal XSD\n"
         "  approx <schema>               minimal upper XSD-approximation\n"
         "  merge <s1> <s2>               upper approximation of the union\n"
         "  intersect <s1> <s2>           exact intersection\n"
         "  diff <s1> <s2>                upper approximation of s1 \\ s2\n"
         "  complement <schema>           upper approx of the complement\n"
         "  lower <s1> <s2>               maximal lower approx of the union\n"
         "  included <s1> <s2>            L(s1) subset of L(s2)?\n"
         "  witness <s1> <s2>             a document in L(s1) \\ L(s2)\n"
         "  types <schema> <doc.xml>      print the document's typing\n"
         "  report <s1> <s2>              full comparison report\n"
         "  sample <schema> [count]       sample random documents\n"
         "  count <schema> <depth> <w>    count documents within bounds\n"
         "  measure <schema> [flags]      tree-counting precision report:\n"
         "                                exact |L(S)|, |L(upper)\\L(S)|,\n"
         "                                |L(S)\\L(lower)| per depth; flags:\n"
         "                                --upper --lower --both (default)\n"
         "                                --depth=D --width=W --json\n"
         "  export <schema> [--repair-upa]  write a W3C-style .xsd\n"
         "  import <schema.xsd>           read a W3C-style .xsd\n"
         "  family <name> <n>             generate a lower-bound family\n"
         "                                (theorem32, theorem36a/b,\n"
         "                                theorem38a/b, theorem43a/b,\n"
         "                                theorem411, counted;\n"
         "                                43/411 ignore n, counted uses\n"
         "                                Item{n,2n})\n"
         "  explain <schema>              approximate and print a per-phase\n"
         "                                provenance table\n"
         "          [--schema-guided]     run content merges through the\n"
         "                                schema-guided determinizer and\n"
         "                                report pruning counters\n"
         "  serve [flags]                 validation daemon; flags:\n"
         "                                --port=N (0 = ephemeral)\n"
         "                                --schemas=DIR (*.stapc/*.stap)\n"
         "                                --max-connections=N\n"
         "                                --max-inflight=N\n"
         "                                --request-budget-ms=N\n"
         "                                --request-max-states=N\n"
         "                                --request-max-sets=N\n"
         "                                --access-log=FILE (JSONL)\n"
         "                                --slow-ms=N (slow-request capture)\n"
         "                                --log-ring=N --slow-ring=N\n"
         "  top --port=N [--host=H]       live one-screen view of a serve\n"
         "      [--interval-ms=N]         daemon (/statusz + /metrics):\n"
         "      [--count=N]               qps, p50/p99, error rates, cache\n"
         "global flags: --jobs=N --budget-ms=N --max-states=N --max-sets=N\n"
         "              --metrics-json[=file] --metrics-prom[=file]\n"
         "              --trace-json[=file]  (exit 3 = budget exhausted)\n"
         "schema arguments accept the textual format (docs/FORMAT.md) or a\n"
         "W3C .xsd document (auto-detected by a leading '<')\n";
  return 2;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

// Loads a schema source for the analysis commands: a W3C XSD document
// (sniffed via LooksLikeXml) goes through the XSD importer, anything else
// through the textual-format parser. Content-model compilation — including
// counted-repetition expansion — is charged against `budget` when set.
StatusOr<Edtd> LoadSchema(const std::string& path, Budget* budget = nullptr) {
  StatusOr<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  if (LooksLikeXml(*text)) return ImportXsd(*text, budget);
  return ParseSchema(*text, /*cache=*/nullptr, budget);
}

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  // Budget exhaustion is an expected, recoverable outcome (retry with a
  // larger budget); give it a distinct exit code scripts can branch on.
  return status.code() == StatusCode::kResourceExhausted ? 3 : 1;
}

// Global flags shared by every command.
struct GlobalOptions {
  std::unique_ptr<Budget> budget;  // null = unlimited
  bool dump_metrics = false;
  std::string metrics_path;  // empty or "-" = stderr
  bool dump_prom = false;
  std::string prom_path;  // empty or "-" = stderr
  bool trace = false;
  std::string trace_path;  // empty or "-" = stderr
  // --jobs=N worker threads for batch validation; -1 = unset (serial,
  // single-document compatibility mode), 0 = one per hardware thread.
  int jobs = -1;
  // Session wrapping the whole command when --trace-json is given; also
  // borrowed by `explain` for its phase table so one recording serves both.
  std::unique_ptr<TraceSession> session;
  // Registry value at session start, so `explain` can cross-check span
  // sums against counter deltas over the exact recording window.
  int64_t states_at_trace_start = 0;

  Budget* budget_ptr() const { return budget.get(); }
};

// Extracts the global --budget-ms/--max-states/--max-sets/--metrics-json/
// --metrics-prom/--trace-json flags from anywhere on the command line;
// everything else passes through in order. Returns false on a malformed
// flag value. (Keep this list in sync with Usage() and the file header.)
bool ParseGlobalFlags(int argc, char** argv, std::vector<std::string>* args,
                      GlobalOptions* options) {
  auto budget = [&]() -> Budget* {
    if (options->budget == nullptr) options->budget = std::make_unique<Budget>();
    return options->budget.get();
  };
  auto int_value = [](const std::string& text, int64_t* out) {
    char* end = nullptr;
    long long parsed = std::strtoll(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || parsed < 0) return false;
    *out = parsed;
    return true;
  };
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    int64_t value = 0;
    if (arg.rfind("--budget-ms=", 0) == 0) {
      if (!int_value(arg.substr(12), &value)) return false;
      budget()->set_deadline_ms(value);
    } else if (arg.rfind("--max-states=", 0) == 0) {
      if (!int_value(arg.substr(13), &value)) return false;
      budget()->set_max_states(value);
    } else if (arg.rfind("--max-sets=", 0) == 0) {
      if (!int_value(arg.substr(11), &value)) return false;
      budget()->set_max_sets(value);
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!int_value(arg.substr(7), &value) || value > 1024) return false;
      options->jobs = static_cast<int>(value);
    } else if (arg == "--metrics-json") {
      options->dump_metrics = true;
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      options->dump_metrics = true;
      options->metrics_path = arg.substr(15);
    } else if (arg == "--metrics-prom") {
      options->dump_prom = true;
    } else if (arg.rfind("--metrics-prom=", 0) == 0) {
      options->dump_prom = true;
      options->prom_path = arg.substr(15);
    } else if (arg == "--trace-json") {
      options->trace = true;
    } else if (arg.rfind("--trace-json=", 0) == 0) {
      options->trace = true;
      options->trace_path = arg.substr(13);
    } else {
      args->push_back(std::move(arg));
    }
  }
  return true;
}

// Checked decimal parse for positional counts (sample count, count
// bounds, family size), mirroring the global-flag parser: garbage,
// trailing junk, and out-of-range values are reported as errors instead
// of silently becoming 0 the way std::atoi made them.
bool ParseCount(const std::string& text, int64_t min_value, int64_t max_value,
                int* out) {
  char* end = nullptr;
  errno = 0;
  long long parsed = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      parsed < min_value || parsed > max_value) {
    return false;
  }
  *out = static_cast<int>(parsed);
  return true;
}

int BadCount(const std::string& what, const std::string& text,
             int64_t min_value, int64_t max_value) {
  return Fail(InvalidArgumentError(
      "invalid " + what + " '" + text + "' (expected an integer in [" +
      std::to_string(min_value) + ", " + std::to_string(max_value) + "])"));
}

// Writes `text` to `path` ("" or "-" = stderr). Returns the exit code,
// degraded to 1 on a write failure that would otherwise be reported as
// success.
int WriteDump(const std::string& text, const std::string& path,
              const char* what, int exit_code) {
  if (path.empty() || path == "-") {
    std::cerr << text << "\n";
    return exit_code;
  }
  std::ofstream out(path);
  if (!out) {
    std::cerr << "error: cannot write " << what << " to '" << path << "'\n";
    return exit_code == 0 ? 1 : exit_code;
  }
  out << text << "\n";
  return exit_code;
}

// Writes the metrics registry to the configured sinks. Runs after the
// command body whatever its outcome, so budget-exhausted runs still
// report how far they got.
int DumpMetrics(const GlobalOptions& options, int exit_code) {
  if (options.dump_metrics) {
    exit_code = WriteDump(MetricsRegistry::Global()->ToJson(),
                          options.metrics_path, "metrics", exit_code);
  }
  if (options.dump_prom) {
    exit_code = WriteDump(MetricsRegistry::Global()->ToPrometheusText(),
                          options.prom_path, "metrics", exit_code);
  }
  return exit_code;
}

// Stops the --trace-json session (if any) and writes the Chrome trace.
int DumpTrace(GlobalOptions& options, int exit_code) {
  if (options.session == nullptr) return exit_code;
  options.session->Stop();
  return WriteDump(options.session->ToChromeJson(), options.trace_path,
                   "trace", exit_code);
}

// Loads a schema for the validation path: a compiled artifact is
// deserialized as-is; textual schemas compile through the process-wide
// content-model cache (so repeated invocations in one process — and the
// batch tests — share compilations).
StatusOr<CompiledSchema> LoadCompiledSchema(const std::string& path,
                                            Budget* budget = nullptr) {
  StatusOr<std::string> bytes = ReadFile(path);
  if (!bytes.ok()) return bytes.status();
  if (LooksLikeArtifact(*bytes)) return DeserializeArtifact(*bytes);
  return CompileSchema(*bytes, CompileCache::Global(), budget);
}

int CmdCompile(const std::vector<std::string>& argv, Budget* budget) {
  // compile <schema> -o <artifact>
  if (argv.size() != 5 || argv[3] != "-o") return Usage();
  StatusOr<std::string> text = ReadFile(argv[2]);
  if (!text.ok()) return Fail(text.status());
  if (LooksLikeArtifact(*text)) {
    return Fail(InvalidArgumentError("'" + argv[2] +
                                     "' is already a compiled artifact"));
  }
  StatusOr<CompiledSchema> schema =
      CompileSchema(*text, CompileCache::Global(), budget);
  if (!schema.ok()) return Fail(schema.status());
  const std::string bytes = SerializeArtifact(*schema);
  std::ofstream out(argv[4], std::ios::binary);
  if (!out || !(out << bytes) || !out.flush()) {
    return Fail(InternalError("cannot write artifact to '" + argv[4] + "'"));
  }
  std::cout << "compiled " << argv[2] << ": " << schema->edtd.num_types()
            << " types, single-type "
            << (schema->single_type ? "yes" : "no") << ", " << bytes.size()
            << " bytes -> " << argv[4] << "\n";
  return 0;
}

// Single-document validation, output-compatible with the historical
// `stap validate <schema> <doc.xml>`.
int ValidateSingle(const CompiledSchema& schema, const std::string& doc_path) {
  StatusOr<std::string> xml = ReadFile(doc_path);
  if (!xml.ok()) return Fail(xml.status());
  Alphabet alphabet = schema.edtd.sigma;
  StatusOr<Tree> document = ParseXml(*xml, &alphabet);
  if (!document.ok()) return Fail(document.status());
  if (alphabet.size() != schema.edtd.sigma.size()) {
    std::cout << "INVALID: document uses elements the schema does not "
                 "declare\n";
    return 1;
  }
  if (schema.single_type) {
    ValidationResult result = ValidateWithDiagnostics(schema.xsd, *document);
    if (result.ok) {
      std::cout << "VALID\n";
      return 0;
    }
    std::cout << "INVALID: " << result.message << "\n";
    return 1;
  }
  bool ok = schema.edtd.Accepts(*document);
  std::cout << (ok ? "VALID\n" : "INVALID\n");
  return ok ? 0 : 1;
}

int CmdValidate(const std::vector<std::string>& argv,
                const GlobalOptions& options) {
  StatusOr<CompiledSchema> schema =
      LoadCompiledSchema(argv[2], options.budget_ptr());
  if (!schema.ok()) return Fail(schema.status());
  if (argv.size() == 4 && options.jobs < 0) {
    return ValidateSingle(*schema, argv[3]);
  }
  // Batch mode: one status line per document, in input order, plus a
  // summary — byte-identical output whatever the job count.
  std::vector<BatchDocument> documents;
  documents.reserve(argv.size() - 3);
  for (size_t i = 3; i < argv.size(); ++i) {
    BatchDocument doc;
    doc.name = argv[i];
    StatusOr<std::string> xml = ReadFile(argv[i]);
    if (xml.ok()) {
      doc.xml = std::move(*xml);
    } else {
      // An unreadable file surfaces as a per-document ERROR line, not a
      // whole-batch failure.
      doc.read_error = xml.status().message();
    }
    documents.push_back(std::move(doc));
  }
  BatchOptions batch_options;
  batch_options.jobs = options.jobs < 0 ? 1 : options.jobs;
  batch_options.budget = options.budget_ptr();
  BatchResult result = BatchValidate(*schema, documents, batch_options);
  std::cout << FormatBatchReport(documents, result);
  return result.all_valid() ? 0 : 1;
}

int CmdCheck(const std::string& schema_path, Budget* budget) {
  StatusOr<Edtd> schema = LoadSchema(schema_path, budget);
  if (!schema.ok()) return Fail(schema.status());
  Edtd reduced = ReduceEdtd(*schema);
  std::cout << "types (declared):  " << schema->num_types() << "\n"
            << "types (reduced):   " << reduced.num_types() << "\n"
            << "alphabet:          " << reduced.sigma.size() << " elements\n"
            << "empty language:    "
            << (reduced.num_types() == 0 ? "yes" : "no") << "\n"
            << "single-type (EDC): "
            << (IsSingleType(reduced) ? "yes" : "no") << "\n"
            << "single-type definable: "
            << (IsSingleTypeDefinable(reduced) ? "yes" : "no") << "\n";
  // UPA (Section 5): is every content model a one-unambiguous language?
  bool upa = true;
  for (int tau = 0; tau < reduced.num_types() && upa; ++tau) {
    upa = IsOneUnambiguousLanguage(reduced.content[tau]);
  }
  std::cout << "UPA-expressible content models: " << (upa ? "yes" : "no")
            << "\n";
  return 0;
}

int PrintXsd(const DfaXsd& xsd) {
  std::cout << SchemaToText(StEdtdFromDfaXsd(MinimizeXsd(xsd)));
  return 0;
}

int CmdSample(const std::string& schema_path, int count, Budget* budget) {
  StatusOr<Edtd> schema = LoadSchema(schema_path, budget);
  if (!schema.ok()) return Fail(schema.status());
  Edtd reduced = ReduceEdtd(*schema);
  if (reduced.num_types() == 0) return Fail(InvalidArgumentError(
      "schema language is empty"));
  if (!IsSingleType(reduced)) {
    return Fail(UnimplementedError(
        "sampling requires a single-type schema; run 'approx' first"));
  }
  DfaXsd xsd = DfaXsdFromStEdtd(reduced);
  std::random_device device;
  std::mt19937 rng(device());
  for (int i = 0; i < count; ++i) {
    std::optional<Tree> tree = SampleTree(xsd, &rng, 6);
    if (!tree.has_value()) break;
    std::cout << ToXml(*tree, xsd.sigma);
    if (i + 1 < count) std::cout << "<!-- -->\n";
  }
  return 0;
}

// `stap measure <schema> [--upper|--lower|--both] [--depth=D] [--width=W]
// [--json]`: exact precision analytics. Counts |L(S)|, |L(upper)|, and
// |L(lower)| by depth with the counting DP, plus the pairwise
// intersections, and reports the gained/lost document counts and the
// precision/recall ratios. Budget exhaustion surfaces as exit 3 via Fail.
int CmdMeasure(const std::vector<std::string>& args, Budget* budget) {
  MeasureOptions options;
  bool json = false;
  bool side_chosen = false;
  for (size_t i = 3; i < args.size(); ++i) {
    const std::string& flag = args[i];
    if (flag == "--upper") {
      options.upper = true;
      options.lower = side_chosen && options.lower;
      side_chosen = true;
    } else if (flag == "--lower") {
      options.lower = true;
      options.upper = side_chosen && options.upper;
      side_chosen = true;
    } else if (flag == "--both") {
      options.upper = true;
      options.lower = true;
      side_chosen = true;
    } else if (flag == "--json") {
      json = true;
    } else if (flag.rfind("--depth=", 0) == 0) {
      if (!ParseCount(flag.substr(8), 1, 64, &options.bounds.max_depth)) {
        return BadCount("depth bound", flag.substr(8), 1, 64);
      }
    } else if (flag.rfind("--width=", 0) == 0) {
      if (!ParseCount(flag.substr(8), 0, 64, &options.bounds.max_width)) {
        return BadCount("width bound", flag.substr(8), 0, 64);
      }
    } else {
      return Usage();
    }
  }
  StatusOr<Edtd> schema = LoadSchema(args[2], budget);
  if (!schema.ok()) return Fail(schema.status());
  StatusOr<MeasureResult> result = MeasureSchema(*schema, options, budget);
  if (!result.ok()) return Fail(result.status());
  std::cout << (json ? result->ToJson() : result->ToText());
  if (json) std::cout << "\n";
  return 0;
}

// `stap explain`: run the approximation pipeline under a trace session and
// print the per-phase provenance rollup — each phase with call count, wall
// time, and the size counters its spans recorded. Reuses the global
// --trace-json session when one is active so the same recording also lands
// in the Chrome trace; otherwise records into a throwaway local session.
int CmdExplain(const std::string& schema_path, bool schema_guided,
               GlobalOptions& options) {
  StatusOr<Edtd> schema = LoadSchema(schema_path, options.budget_ptr());
  if (!schema.ok()) return Fail(schema.status());

  Counter* const determinize_states = GetCounter("determinize.states_created");
  Counter* const schema_calls = GetCounter("determinize.schema_calls");
  Counter* const pruned_states =
      GetCounter("determinize.schema_pruned_states");
  Counter* const pruned_transitions =
      GetCounter("determinize.schema_pruned_transitions");
  const int64_t schema_calls_before = schema_calls->value();
  const int64_t pruned_states_before = pruned_states->value();
  const int64_t pruned_transitions_before = pruned_transitions->value();
  TraceSession local;
  TraceSession* session = options.session.get();
  // The registry delta is measured over the recording window, so it is
  // comparable to the span sums whichever session records.
  int64_t states_before = options.states_at_trace_start;
  if (session == nullptr) {
    states_before = determinize_states->value();
    session = &local;
    local.Start();
  }

  // --schema-guided: run every content merge under the union-of-contents
  // context. That context is exact-mode (upper.h), so the resulting XSD
  // is identical — the flag exists to exercise and observe the
  // schema-guided path on real schemas, not to change the answer.
  UpperOptions upper_options;
  Nfa content_context(0, 0);
  if (schema_guided) {
    content_context = ContentUnionContext(*schema);
    upper_options.content_context = &content_context;
  }
  StatusOr<DfaXsd> xsd =
      MinimalUpperApproximation(*schema, options.budget_ptr(), upper_options);
  if (session == &local) local.Stop();
  // The phase table is printed even when the budget ran out: seeing where
  // the states went is most valuable exactly then.
  std::cout << TraceSession::FormatPhaseTable(session->PhaseTable());
  // Cross-check: the `states_created` args summed over every determinize
  // span (any depth) must equal the registry counter's delta over the
  // recording window — both count the same subset-construction states.
  int64_t traced_states = 0;
  for (const TraceSession::PhaseRow& row :
       session->PhaseTable(/*max_depth=*/1 << 20)) {
    if (row.name != "determinize") continue;
    for (const auto& [key, value] : row.int_args) {
      if (key == "states_created") traced_states += value;
    }
  }
  const int64_t registry_states =
      determinize_states->value() - states_before;
  std::cout << "cross-check: determinize.states_created +" << registry_states
            << " (registry), " << traced_states << " (trace spans)"
            << (registry_states == traced_states ? "" : "  MISMATCH") << "\n";
  // Schema-guided pruning summary (all deltas over this run); printed
  // whenever the guided path ran so dense runs stay byte-compatible.
  if (schema_calls->value() != schema_calls_before) {
    std::cout << "schema-guided: " << schema_calls->value() - schema_calls_before
              << " guided determinizations, "
              << pruned_states->value() - pruned_states_before
              << " subsets pruned, "
              << pruned_transitions->value() - pruned_transitions_before
              << " transitions redirected\n";
  }
  if (!xsd.ok()) return Fail(xsd.status());
  std::cout << "result: " << xsd->automaton.num_states()
            << " XSD states over " << xsd->sigma.size() << " elements\n";
  return 0;
}

// Self-pipe for signal-driven shutdown: the handler writes one byte, the
// serving thread blocks on the read end. Async-signal-safe (write only).
int g_shutdown_pipe[2] = {-1, -1};

extern "C" void ServeSignalHandler(int /*signum*/) {
  const char byte = 1;
  // The return value is irrelevant: a full pipe means shutdown is
  // already pending.
  [[maybe_unused]] ssize_t ignored = ::write(g_shutdown_pipe[1], &byte, 1);
}

// serve [--port=N] [--schemas=DIR] [--max-connections=N] [--max-inflight=N]
//       [--request-budget-ms=N] [--request-max-states=N]
//       [--request-max-sets=N] [--access-log=FILE] [--slow-ms=N]
//       [--log-ring=N] [--slow-ring=N]
// Prints the bound address ("serving on HOST:PORT") once ready, then runs
// until SIGINT/SIGTERM, drains connections, and exits 0. --access-log
// appends one JSONL record per request; requests slower than --slow-ms
// keep their span tree for /requestz (ring sizes via --log-ring /
// --slow-ring).
int CmdServe(const std::vector<std::string>& argv) {
  ServeOptions options;
  for (size_t i = 2; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    auto flag_value = [&](const char* prefix, int64_t min_value,
                          int64_t max_value, int64_t* out) {
      const std::string text = arg.substr(std::strlen(prefix));
      int value = 0;
      if (!ParseCount(text, min_value, max_value, &value)) return false;
      *out = value;
      return true;
    };
    int64_t value = 0;
    if (arg.rfind("--port=", 0) == 0) {
      if (!flag_value("--port=", 0, 65535, &value)) return Usage();
      options.port = static_cast<int>(value);
    } else if (arg.rfind("--schemas=", 0) == 0) {
      options.schema_dir = arg.substr(10);
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      if (!flag_value("--max-connections=", 1, 4096, &value)) return Usage();
      options.max_connections = static_cast<int>(value);
    } else if (arg.rfind("--max-inflight=", 0) == 0) {
      if (!flag_value("--max-inflight=", 0, 4096, &value)) return Usage();
      options.max_inflight = static_cast<int>(value);
    } else if (arg.rfind("--request-budget-ms=", 0) == 0) {
      if (!flag_value("--request-budget-ms=", 0, 86400000, &value)) {
        return Usage();
      }
      options.request_budget_ms = value;
    } else if (arg.rfind("--request-max-states=", 0) == 0) {
      if (!flag_value("--request-max-states=", 0, 1000000000, &value)) {
        return Usage();
      }
      options.request_max_states = value;
    } else if (arg.rfind("--request-max-sets=", 0) == 0) {
      if (!flag_value("--request-max-sets=", 0, 1000000000, &value)) {
        return Usage();
      }
      options.request_max_sets = value;
    } else if (arg.rfind("--access-log=", 0) == 0) {
      options.access_log_path = arg.substr(13);
    } else if (arg.rfind("--slow-ms=", 0) == 0) {
      if (!flag_value("--slow-ms=", 0, 86400000, &value)) return Usage();
      options.slow_request_ms = value;
    } else if (arg.rfind("--log-ring=", 0) == 0) {
      if (!flag_value("--log-ring=", 1, 1000000, &value)) return Usage();
      options.access_log_ring = static_cast<size_t>(value);
    } else if (arg.rfind("--slow-ring=", 0) == 0) {
      if (!flag_value("--slow-ring=", 1, 1000000, &value)) return Usage();
      options.slow_ring = static_cast<size_t>(value);
    } else {
      return Usage();
    }
  }

  if (::pipe(g_shutdown_pipe) != 0) {
    return Fail(InternalError("cannot create the shutdown pipe"));
  }
  Server server(std::move(options));
  Status started = server.Start();
  if (!started.ok()) return Fail(started);
  std::signal(SIGINT, ServeSignalHandler);
  std::signal(SIGTERM, ServeSignalHandler);
  // std::endl flushes, so wrapper scripts can scrape the port as soon as
  // the line appears even when stdout is a file.
  std::cout << "serving on 127.0.0.1:" << server.port() << std::endl;

  char byte = 0;
  while (::read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::cout << "shutting down" << std::endl;
  server.Stop();
  return 0;
}

// The /statusz document is deliberately flat ("key": number per line), so
// the operator CLI can read it without a JSON parser: find the quoted key
// and strtod whatever follows the colon.
double FindJsonNumber(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t pos = json.find(needle);
  if (pos == std::string::npos) return 0;
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

// First sample of a Prometheus exposition metric (line-anchored match).
double FindPromValue(const std::string& text, const std::string& name) {
  const std::string needle = name + " ";
  size_t pos = 0;
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    if (pos == 0 || text[pos - 1] == '\n') {
      return std::strtod(text.c_str() + pos + needle.size(), nullptr);
    }
    pos += needle.size();
  }
  return 0;
}

// top --port=N [--host=H] [--interval-ms=N] [--count=N]
// Polls /statusz and /metrics and renders a refreshing one-screen view:
// qps (both the 60s window and the poll-to-poll delta), latency
// quantiles, per-code rates, liveness, and compile-cache hits. --count=N
// exits after N refreshes (0 = run until interrupted).
int CmdTop(const std::vector<std::string>& argv) {
  std::string host = "127.0.0.1";
  int64_t port = 0;
  int64_t interval_ms = 1000;
  int64_t count = 0;
  for (size_t i = 2; i < argv.size(); ++i) {
    const std::string& arg = argv[i];
    auto flag_value = [&](const char* prefix, int64_t min_value,
                          int64_t max_value, int64_t* out) {
      int value = 0;
      if (!ParseCount(arg.substr(std::strlen(prefix)), min_value, max_value,
                      &value)) {
        return false;
      }
      *out = value;
      return true;
    };
    if (arg.rfind("--port=", 0) == 0) {
      if (!flag_value("--port=", 1, 65535, &port)) return Usage();
    } else if (arg.rfind("--host=", 0) == 0) {
      host = arg.substr(7);
    } else if (arg.rfind("--interval-ms=", 0) == 0) {
      if (!flag_value("--interval-ms=", 10, 3600000, &interval_ms)) {
        return Usage();
      }
    } else if (arg.rfind("--count=", 0) == 0) {
      if (!flag_value("--count=", 0, 1000000000, &count)) return Usage();
    } else {
      return Usage();
    }
  }
  if (port == 0) return Usage();

  const bool tty = ::isatty(STDOUT_FILENO) != 0;
  double prev_requests = -1;
  double prev_cache_hits = 0;
  auto prev_time = std::chrono::steady_clock::now();
  for (int64_t iteration = 0; count == 0 || iteration < count; ++iteration) {
    if (iteration > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    }
    StatusOr<std::string> statusz = HttpGetBody(host, static_cast<int>(port),
                                                "/statusz");
    if (!statusz.ok()) return Fail(statusz.status());
    StatusOr<std::string> metrics = HttpGetBody(host, static_cast<int>(port),
                                                "/metrics");
    if (!metrics.ok()) return Fail(metrics.status());
    const auto now = std::chrono::steady_clock::now();
    const double elapsed_s =
        std::chrono::duration<double>(now - prev_time).count();

    const double total_requests = FindJsonNumber(*statusz, "total_requests");
    const double cache_hits = FindPromValue(*metrics, "stap_cache_hit");
    const double delta_qps =
        prev_requests >= 0 && elapsed_s > 0
            ? (total_requests - prev_requests) / elapsed_s
            : 0;

    if (tty) std::fputs("\x1b[2J\x1b[H", stdout);
    std::printf("stap top — %s:%d    up %.0fs    epoch %.0f    schemas %.0f\n",
                host.c_str(), static_cast<int>(port),
                FindJsonNumber(*statusz, "uptime_s"),
                FindJsonNumber(*statusz, "snapshot_epoch"),
                FindJsonNumber(*statusz, "schema_count"));
    std::printf(
        "requests  total %.0f    qps %.0f (window %.0fs)    qps %.0f "
        "(last %.1fs)\n",
        total_requests, FindJsonNumber(*statusz, "window_qps"),
        FindJsonNumber(*statusz, "window_s"), delta_qps, elapsed_s);
    std::printf(
        "latency   p50 %.0fµs    p95 %.0fµs    p99 %.0fµs    max %.0fµs    "
        "mean %.1fµs\n",
        FindJsonNumber(*statusz, "p50_us"),
        FindJsonNumber(*statusz, "p95_us"),
        FindJsonNumber(*statusz, "p99_us"),
        FindJsonNumber(*statusz, "max_us"),
        FindJsonNumber(*statusz, "mean_us"));
    std::printf(
        "codes/win ok %.0f  invalid %.0f  error %.0f  busy %.0f  "
        "exhausted %.0f  not_found %.0f\n",
        FindJsonNumber(*statusz, "window_ok"),
        FindJsonNumber(*statusz, "window_invalid"),
        FindJsonNumber(*statusz, "window_error"),
        FindJsonNumber(*statusz, "window_busy"),
        FindJsonNumber(*statusz, "window_exhausted"),
        FindJsonNumber(*statusz, "window_not_found"));
    std::printf(
        "liveness  conns %.0f/%.0f    inflight %.0f    cache hits %.0f "
        "(+%.0f)\n",
        FindJsonNumber(*statusz, "active_connections"),
        FindJsonNumber(*statusz, "max_connections"),
        FindJsonNumber(*statusz, "inflight"), cache_hits,
        prev_requests >= 0 ? cache_hits - prev_cache_hits : 0);
    std::printf(
        "log       slow %.0f captured    %.0f lines    %.0f dropped\n",
        FindJsonNumber(*statusz, "slow_captured"),
        FindJsonNumber(*statusz, "access_log_lines"),
        FindJsonNumber(*statusz, "access_log_dropped"));
    std::fflush(stdout);

    prev_requests = total_requests;
    prev_cache_hits = cache_hits;
    prev_time = now;
  }
  return 0;
}

int RunCommand(const std::vector<std::string>& argv, GlobalOptions& options) {
  Budget* const budget = options.budget_ptr();
  const int argc = static_cast<int>(argv.size());
  if (argc < 2) return Usage();
  std::string command = argv[1];

  auto load2 = [&](StatusOr<Edtd>* d1, StatusOr<Edtd>* d2) {
    *d1 = LoadSchema(argv[2], budget);
    *d2 = LoadSchema(argv[3], budget);
    return d1->ok() && d2->ok();
  };

  if (command == "validate" && argc >= 4) {
    return CmdValidate(argv, options);
  }
  if (command == "compile") return CmdCompile(argv, budget);
  if (command == "check" && argc == 3) return CmdCheck(argv[2], budget);
  if (command == "minimize" && argc == 3) {
    StatusOr<Edtd> schema = LoadSchema(argv[2], budget);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    if (!IsSingleType(reduced)) {
      return Fail(InvalidArgumentError(
          "schema is not single-type; run 'approx' first"));
    }
    return PrintXsd(DfaXsdFromStEdtd(reduced));
  }
  if (command == "approx" && argc == 3) {
    StatusOr<Edtd> schema = LoadSchema(argv[2], budget);
    if (!schema.ok()) return Fail(schema.status());
    StatusOr<DfaXsd> xsd = MinimalUpperApproximation(*schema, budget);
    if (!xsd.ok()) return Fail(xsd.status());
    return PrintXsd(*xsd);
  }
  if ((command == "merge" || command == "intersect" || command == "diff" ||
       command == "lower" || command == "included") &&
      argc == 4) {
    StatusOr<Edtd> d1(InternalError("unset"));
    StatusOr<Edtd> d2(InternalError("unset"));
    if (!load2(&d1, &d2)) {
      return Fail(d1.ok() ? d2.status() : d1.status());
    }
    Edtd r1 = ReduceEdtd(*d1);
    Edtd r2 = ReduceEdtd(*d2);
    if (command == "included") {
      if (!IsSingleType(r2)) {
        return Fail(InvalidArgumentError(
            "the second schema must be single-type for the PTIME test"));
      }
      StatusOr<bool> included = IncludedInSingleType(r1, r2, nullptr, budget);
      if (!included.ok()) return Fail(included.status());
      std::cout << (*included ? "INCLUDED\n" : "NOT INCLUDED\n");
      return *included ? 0 : 1;
    }
    if (!IsSingleType(r1) || !IsSingleType(r2)) {
      return Fail(InvalidArgumentError(
          "both schemas must be single-type; run 'approx' on each first"));
    }
    if (command == "merge") {
      StatusOr<DfaXsd> result = UpperUnion(r1, r2, budget);
      if (!result.ok()) return Fail(result.status());
      return PrintXsd(*result);
    }
    if (command == "intersect") {
      StatusOr<DfaXsd> result = UpperIntersection(r1, r2, nullptr, budget);
      if (!result.ok()) return Fail(result.status());
      return PrintXsd(*result);
    }
    if (command == "diff") {
      StatusOr<DfaXsd> result = UpperDifference(r1, r2, nullptr, budget);
      if (!result.ok()) return Fail(result.status());
      return PrintXsd(*result);
    }
    return PrintXsd(LowerUnionFixingFirst(r1, r2));
  }
  if (command == "complement" && argc == 3) {
    StatusOr<Edtd> schema = LoadSchema(argv[2], budget);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    if (!IsSingleType(reduced)) {
      return Fail(InvalidArgumentError(
          "schema must be single-type; run 'approx' first"));
    }
    StatusOr<DfaXsd> result = UpperComplement(reduced, nullptr, budget);
    if (!result.ok()) return Fail(result.status());
    return PrintXsd(*result);
  }
  if (command == "sample" && (argc == 3 || argc == 4)) {
    int count = 1;
    if (argc == 4 && !ParseCount(argv[3], 1, 1000000, &count)) {
      return BadCount("sample count", argv[3], 1, 1000000);
    }
    return CmdSample(argv[2], count, budget);
  }
  if (command == "witness" && argc == 4) {
    StatusOr<Edtd> d1 = LoadSchema(argv[2], budget);
    if (!d1.ok()) return Fail(d1.status());
    StatusOr<Edtd> d2 = LoadSchema(argv[3], budget);
    if (!d2.ok()) return Fail(d2.status());
    Edtd r2 = ReduceEdtd(*d2);
    if (!IsSingleType(r2)) {
      return Fail(InvalidArgumentError(
          "the second schema must be single-type; run 'approx' first"));
    }
    std::optional<Tree> witness =
        XsdInclusionWitness(*d1, DfaXsdFromStEdtd(r2));
    if (!witness.has_value()) {
      std::cout << "INCLUDED (no witness)\n";
      return 0;
    }
    // Render over the merged alphabet the witness was built with.
    Alphabet merged = DfaXsdFromStEdtd(r2).sigma;
    for (int a = 0; a < d1->sigma.size(); ++a) {
      merged.Intern(d1->sigma.Name(a));
    }
    std::cout << ToXml(*witness, merged);
    return 1;
  }
  if (command == "report" && argc == 4) {
    StatusOr<Edtd> d1 = LoadSchema(argv[2], budget);
    if (!d1.ok()) return Fail(d1.status());
    StatusOr<Edtd> d2 = LoadSchema(argv[3], budget);
    if (!d2.ok()) return Fail(d2.status());
    Edtd r1 = ReduceEdtd(*d1);
    Edtd r2 = ReduceEdtd(*d2);
    if (!IsSingleType(r1) || !IsSingleType(r2)) {
      return Fail(InvalidArgumentError(
          "both schemas must be single-type; run 'approx' on each first"));
    }
    std::cout << CompareSchemas(r1, r2).ToString();
    return 0;
  }
  if (command == "types" && argc == 4) {
    StatusOr<Edtd> schema = LoadSchema(argv[2], budget);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    StatusOr<std::string> xml = ReadFile(argv[3]);
    if (!xml.ok()) return Fail(xml.status());
    Alphabet alphabet = reduced.sigma;
    StatusOr<Tree> document = ParseXml(*xml, &alphabet);
    if (!document.ok()) return Fail(document.status());
    if (alphabet.size() != reduced.sigma.size()) {
      std::cout << "NO TYPING (undeclared elements)\n";
      return 1;
    }
    std::optional<Typing> typing = AssignTypesEdtd(reduced, *document);
    if (!typing.has_value()) {
      std::cout << "NO TYPING (document invalid)\n";
      return 1;
    }
    std::cout << typing->ToString(reduced, *document);
    int64_t count = CountTypings(reduced, *document);
    if (count > 1) {
      std::cout << "(ambiguous: " << count << " distinct typings)\n";
    }
    return 0;
  }
  if (command == "count" && argc == 5) {
    StatusOr<Edtd> schema = LoadSchema(argv[2], budget);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    if (!IsSingleType(reduced)) {
      return Fail(InvalidArgumentError(
          "counting requires a single-type schema; run 'approx' first"));
    }
    int depth = 0;
    int width = 0;
    if (!ParseCount(argv[3], 0, 1000000, &depth)) {
      return BadCount("depth bound", argv[3], 0, 1000000);
    }
    if (!ParseCount(argv[4], 0, 1000000, &width)) {
      return BadCount("width bound", argv[4], 0, 1000000);
    }
    double count = CountDocuments(DfaXsdFromStEdtd(reduced), depth, width);
    std::cout << count << "\n";
    return 0;
  }
  if (command == "measure" && argc >= 3) return CmdMeasure(argv, budget);
  if (command == "export" && (argc == 3 || argc == 4)) {
    StatusOr<Edtd> schema = LoadSchema(argv[2], budget);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    if (!IsSingleType(reduced)) {
      return Fail(InvalidArgumentError(
          "export requires a single-type schema; run 'approx' first"));
    }
    XsdExportOptions options;
    if (argc == 4) {
      if (std::string(argv[3]) != "--repair-upa") return Usage();
      options.repair_upa = true;
    }
    std::cout << ExportXsd(MinimizeXsd(DfaXsdFromStEdtd(reduced)), options);
    return 0;
  }
  if (command == "import" && argc == 3) {
    StatusOr<std::string> xml = ReadFile(argv[2]);
    if (!xml.ok()) return Fail(xml.status());
    StatusOr<Edtd> schema = ImportXsd(*xml, budget);
    if (!schema.ok()) return Fail(schema.status());
    std::cout << SchemaToText(ReduceEdtd(*schema));
    return 0;
  }
  if (command == "family" && (argc == 3 || argc == 4)) {
    const std::string& name = argv[2];
    int n = 1;
    if (argc == 4 && !ParseCount(argv[3], 1, 1000000, &n)) {
      return BadCount("family size", argv[3], 1, 1000000);
    }
    // The pair-valued families expose each member under an a/b suffix so
    // the result is always a single schema on stdout.
    Edtd schema;
    if (name == "theorem32") {
      schema = Theorem32Family(n);
    } else if (name == "theorem36a") {
      schema = Theorem36Family(n).first;
    } else if (name == "theorem36b") {
      schema = Theorem36Family(n).second;
    } else if (name == "theorem38a") {
      schema = Theorem38Family(n).first;
    } else if (name == "theorem38b") {
      schema = Theorem38Family(n).second;
    } else if (name == "theorem43a") {
      schema = Theorem43Schemas().first;
    } else if (name == "theorem43b") {
      schema = Theorem43Schemas().second;
    } else if (name == "theorem411") {
      schema = Theorem411Dtd();
    } else if (name == "counted") {
      schema = CountedFamily(n, 2 * n);
    } else {
      return Fail(InvalidArgumentError("unknown family '" + name + "'"));
    }
    std::cout << SchemaToText(schema);
    return 0;
  }
  if (command == "explain" && (argc == 3 || argc == 4)) {
    if (argc == 4 && argv[3] != "--schema-guided") return Usage();
    return CmdExplain(argv[2], argc == 4, options);
  }
  if (command == "serve") return CmdServe(argv);
  if (command == "top") return CmdTop(argv);
  return Usage();
}

int Run(int argc, char** argv) {
  GlobalOptions options;
  std::vector<std::string> args;
  args.push_back(argc > 0 ? argv[0] : "stap");
  if (!ParseGlobalFlags(argc, argv, &args, &options)) return Usage();
  if (options.trace) {
    options.session = std::make_unique<TraceSession>();
    options.session->Start();
    options.states_at_trace_start =
        GetCounter("determinize.states_created")->value();
  }
  const int code = RunCommand(args, options);
  return DumpTrace(options, DumpMetrics(options, code));
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) { return stap::Run(argc, argv); }
