// stap — command-line front end for the library.
//
//   stap validate <schema> <doc.xml>     validate an XML document
//   stap check <schema>                  report schema properties
//   stap minimize <schema>               canonical minimal XSD
//   stap approx <schema>                 minimal upper XSD-approximation
//   stap merge <s1> <s2>                 upper approximation of the union
//   stap intersect <s1> <s2>             exact intersection
//   stap diff <s1> <s2>                  upper approximation of s1 \ s2
//   stap complement <schema>             upper approximation of the complement
//   stap lower <s1> <s2>                 maximal lower approx of the union
//                                        containing s1 (Theorem 4.8)
//   stap included <s1> <s2>              is L(s1) ⊆ L(s2)? (s2 single-type)
//   stap witness <s1> <s2>               a document in L(s1) \ L(s2)
//   stap types <schema> <doc.xml>        print the document's typing
//   stap report <s1> <s2>                full comparison report
//   stap sample <schema> [count]         sample random documents
//   stap count <schema> <depth> <width>  count documents within bounds
//   stap export <schema> [--repair-upa]  write a W3C-style .xsd document
//   stap import <schema.xsd>             read a W3C-style .xsd document
//
// Schemas use the textual format of schema/text_format.h (docs/FORMAT.md)
// unless stated otherwise; results are printed in the same format.
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>

#include "stap/approx/inclusion.h"
#include "stap/approx/lower_check.h"
#include "stap/approx/nv.h"
#include "stap/approx/upper.h"
#include "stap/approx/upper_boolean.h"
#include "stap/approx/diff_report.h"
#include "stap/approx/witness.h"
#include "stap/gen/random.h"
#include "stap/regex/bkw.h"
#include "stap/schema/minimize.h"
#include "stap/schema/reduce.h"
#include "stap/schema/single_type.h"
#include "stap/schema/count.h"
#include "stap/schema/text_format.h"
#include "stap/schema/typing.h"
#include "stap/schema/xsd_io.h"
#include "stap/schema/type_automaton.h"
#include "stap/schema/validate.h"
#include "stap/tree/xml.h"

namespace stap {
namespace {

int Usage() {
  std::cerr
      << "usage: stap <command> <args>\n"
         "  validate <schema> <doc.xml>   validate a document\n"
         "  check <schema>                report schema properties\n"
         "  minimize <schema>             canonical minimal XSD\n"
         "  approx <schema>               minimal upper XSD-approximation\n"
         "  merge <s1> <s2>               upper approximation of the union\n"
         "  intersect <s1> <s2>           exact intersection\n"
         "  diff <s1> <s2>                upper approximation of s1 \\ s2\n"
         "  complement <schema>           upper approx of the complement\n"
         "  lower <s1> <s2>               maximal lower approx of the union\n"
         "  included <s1> <s2>            L(s1) subset of L(s2)?\n"
         "  witness <s1> <s2>             a document in L(s1) \\ L(s2)\n"
         "  types <schema> <doc.xml>      print the document's typing\n"
         "  report <s1> <s2>              full comparison report\n"
         "  sample <schema> [count]       sample random documents\n"
         "  count <schema> <depth> <w>    count documents within bounds\n"
         "  export <schema> [--repair-upa]  write a W3C-style .xsd\n"
         "  import <schema.xsd>           read a W3C-style .xsd\n";
  return 2;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return NotFoundError("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

StatusOr<Edtd> LoadSchema(const std::string& path) {
  StatusOr<std::string> text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ParseSchema(*text);
}

int Fail(const Status& status) {
  std::cerr << "error: " << status << "\n";
  return 1;
}

int CmdValidate(const std::string& schema_path, const std::string& doc_path) {
  StatusOr<Edtd> schema = LoadSchema(schema_path);
  if (!schema.ok()) return Fail(schema.status());
  Edtd reduced = ReduceEdtd(*schema);
  StatusOr<std::string> xml = ReadFile(doc_path);
  if (!xml.ok()) return Fail(xml.status());
  Alphabet alphabet = reduced.sigma;
  StatusOr<Tree> document = ParseXml(*xml, &alphabet);
  if (!document.ok()) return Fail(document.status());
  if (alphabet.size() != reduced.sigma.size()) {
    std::cout << "INVALID: document uses elements the schema does not "
                 "declare\n";
    return 1;
  }
  if (IsSingleType(reduced)) {
    DfaXsd xsd = DfaXsdFromStEdtd(reduced);
    ValidationResult result = ValidateWithDiagnostics(xsd, *document);
    if (result.ok) {
      std::cout << "VALID\n";
      return 0;
    }
    std::cout << "INVALID: " << result.message << "\n";
    return 1;
  }
  bool ok = reduced.Accepts(*document);
  std::cout << (ok ? "VALID\n" : "INVALID\n");
  return ok ? 0 : 1;
}

int CmdCheck(const std::string& schema_path) {
  StatusOr<Edtd> schema = LoadSchema(schema_path);
  if (!schema.ok()) return Fail(schema.status());
  Edtd reduced = ReduceEdtd(*schema);
  std::cout << "types (declared):  " << schema->num_types() << "\n"
            << "types (reduced):   " << reduced.num_types() << "\n"
            << "alphabet:          " << reduced.sigma.size() << " elements\n"
            << "empty language:    "
            << (reduced.num_types() == 0 ? "yes" : "no") << "\n"
            << "single-type (EDC): "
            << (IsSingleType(reduced) ? "yes" : "no") << "\n"
            << "single-type definable: "
            << (IsSingleTypeDefinable(reduced) ? "yes" : "no") << "\n";
  // UPA (Section 5): is every content model a one-unambiguous language?
  bool upa = true;
  for (int tau = 0; tau < reduced.num_types() && upa; ++tau) {
    upa = IsOneUnambiguousLanguage(reduced.content[tau]);
  }
  std::cout << "UPA-expressible content models: " << (upa ? "yes" : "no")
            << "\n";
  return 0;
}

int PrintXsd(const DfaXsd& xsd) {
  std::cout << SchemaToText(StEdtdFromDfaXsd(MinimizeXsd(xsd)));
  return 0;
}

int CmdSample(const std::string& schema_path, int count) {
  StatusOr<Edtd> schema = LoadSchema(schema_path);
  if (!schema.ok()) return Fail(schema.status());
  Edtd reduced = ReduceEdtd(*schema);
  if (reduced.num_types() == 0) return Fail(InvalidArgumentError(
      "schema language is empty"));
  if (!IsSingleType(reduced)) {
    return Fail(UnimplementedError(
        "sampling requires a single-type schema; run 'approx' first"));
  }
  DfaXsd xsd = DfaXsdFromStEdtd(reduced);
  std::random_device device;
  std::mt19937 rng(device());
  for (int i = 0; i < count; ++i) {
    std::optional<Tree> tree = SampleTree(xsd, &rng, 6);
    if (!tree.has_value()) break;
    std::cout << ToXml(*tree, xsd.sigma);
    if (i + 1 < count) std::cout << "<!-- -->\n";
  }
  return 0;
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  std::string command = argv[1];

  auto load2 = [&](StatusOr<Edtd>* d1, StatusOr<Edtd>* d2) {
    *d1 = LoadSchema(argv[2]);
    *d2 = LoadSchema(argv[3]);
    return d1->ok() && d2->ok();
  };

  if (command == "validate" && argc == 4) {
    return CmdValidate(argv[2], argv[3]);
  }
  if (command == "check" && argc == 3) return CmdCheck(argv[2]);
  if (command == "minimize" && argc == 3) {
    StatusOr<Edtd> schema = LoadSchema(argv[2]);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    if (!IsSingleType(reduced)) {
      return Fail(InvalidArgumentError(
          "schema is not single-type; run 'approx' first"));
    }
    return PrintXsd(DfaXsdFromStEdtd(reduced));
  }
  if (command == "approx" && argc == 3) {
    StatusOr<Edtd> schema = LoadSchema(argv[2]);
    if (!schema.ok()) return Fail(schema.status());
    return PrintXsd(MinimalUpperApproximation(*schema));
  }
  if ((command == "merge" || command == "intersect" || command == "diff" ||
       command == "lower" || command == "included") &&
      argc == 4) {
    StatusOr<Edtd> d1(InternalError("unset"));
    StatusOr<Edtd> d2(InternalError("unset"));
    if (!load2(&d1, &d2)) {
      return Fail(d1.ok() ? d2.status() : d1.status());
    }
    Edtd r1 = ReduceEdtd(*d1);
    Edtd r2 = ReduceEdtd(*d2);
    if (command == "included") {
      if (!IsSingleType(r2)) {
        return Fail(InvalidArgumentError(
            "the second schema must be single-type for the PTIME test"));
      }
      bool included = IncludedInSingleType(r1, r2);
      std::cout << (included ? "INCLUDED\n" : "NOT INCLUDED\n");
      return included ? 0 : 1;
    }
    if (!IsSingleType(r1) || !IsSingleType(r2)) {
      return Fail(InvalidArgumentError(
          "both schemas must be single-type; run 'approx' on each first"));
    }
    if (command == "merge") return PrintXsd(UpperUnion(r1, r2));
    if (command == "intersect") return PrintXsd(UpperIntersection(r1, r2));
    if (command == "diff") return PrintXsd(UpperDifference(r1, r2));
    return PrintXsd(LowerUnionFixingFirst(r1, r2));
  }
  if (command == "complement" && argc == 3) {
    StatusOr<Edtd> schema = LoadSchema(argv[2]);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    if (!IsSingleType(reduced)) {
      return Fail(InvalidArgumentError(
          "schema must be single-type; run 'approx' first"));
    }
    return PrintXsd(UpperComplement(reduced));
  }
  if (command == "sample" && (argc == 3 || argc == 4)) {
    int count = argc == 4 ? std::atoi(argv[3]) : 1;
    return CmdSample(argv[2], count);
  }
  if (command == "witness" && argc == 4) {
    StatusOr<Edtd> d1 = LoadSchema(argv[2]);
    if (!d1.ok()) return Fail(d1.status());
    StatusOr<Edtd> d2 = LoadSchema(argv[3]);
    if (!d2.ok()) return Fail(d2.status());
    Edtd r2 = ReduceEdtd(*d2);
    if (!IsSingleType(r2)) {
      return Fail(InvalidArgumentError(
          "the second schema must be single-type; run 'approx' first"));
    }
    std::optional<Tree> witness =
        XsdInclusionWitness(*d1, DfaXsdFromStEdtd(r2));
    if (!witness.has_value()) {
      std::cout << "INCLUDED (no witness)\n";
      return 0;
    }
    // Render over the merged alphabet the witness was built with.
    Alphabet merged = DfaXsdFromStEdtd(r2).sigma;
    for (int a = 0; a < d1->sigma.size(); ++a) {
      merged.Intern(d1->sigma.Name(a));
    }
    std::cout << ToXml(*witness, merged);
    return 1;
  }
  if (command == "report" && argc == 4) {
    StatusOr<Edtd> d1 = LoadSchema(argv[2]);
    if (!d1.ok()) return Fail(d1.status());
    StatusOr<Edtd> d2 = LoadSchema(argv[3]);
    if (!d2.ok()) return Fail(d2.status());
    Edtd r1 = ReduceEdtd(*d1);
    Edtd r2 = ReduceEdtd(*d2);
    if (!IsSingleType(r1) || !IsSingleType(r2)) {
      return Fail(InvalidArgumentError(
          "both schemas must be single-type; run 'approx' on each first"));
    }
    std::cout << CompareSchemas(r1, r2).ToString();
    return 0;
  }
  if (command == "types" && argc == 4) {
    StatusOr<Edtd> schema = LoadSchema(argv[2]);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    StatusOr<std::string> xml = ReadFile(argv[3]);
    if (!xml.ok()) return Fail(xml.status());
    Alphabet alphabet = reduced.sigma;
    StatusOr<Tree> document = ParseXml(*xml, &alphabet);
    if (!document.ok()) return Fail(document.status());
    if (alphabet.size() != reduced.sigma.size()) {
      std::cout << "NO TYPING (undeclared elements)\n";
      return 1;
    }
    std::optional<Typing> typing = AssignTypesEdtd(reduced, *document);
    if (!typing.has_value()) {
      std::cout << "NO TYPING (document invalid)\n";
      return 1;
    }
    std::cout << typing->ToString(reduced, *document);
    int64_t count = CountTypings(reduced, *document);
    if (count > 1) {
      std::cout << "(ambiguous: " << count << " distinct typings)\n";
    }
    return 0;
  }
  if (command == "count" && argc == 5) {
    StatusOr<Edtd> schema = LoadSchema(argv[2]);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    if (!IsSingleType(reduced)) {
      return Fail(InvalidArgumentError(
          "counting requires a single-type schema; run 'approx' first"));
    }
    double count = CountDocuments(DfaXsdFromStEdtd(reduced),
                                  std::atoi(argv[3]), std::atoi(argv[4]));
    std::cout << count << "\n";
    return 0;
  }
  if (command == "export" && (argc == 3 || argc == 4)) {
    StatusOr<Edtd> schema = LoadSchema(argv[2]);
    if (!schema.ok()) return Fail(schema.status());
    Edtd reduced = ReduceEdtd(*schema);
    if (!IsSingleType(reduced)) {
      return Fail(InvalidArgumentError(
          "export requires a single-type schema; run 'approx' first"));
    }
    XsdExportOptions options;
    if (argc == 4) {
      if (std::string(argv[3]) != "--repair-upa") return Usage();
      options.repair_upa = true;
    }
    std::cout << ExportXsd(MinimizeXsd(DfaXsdFromStEdtd(reduced)), options);
    return 0;
  }
  if (command == "import" && argc == 3) {
    StatusOr<std::string> xml = ReadFile(argv[2]);
    if (!xml.ok()) return Fail(xml.status());
    StatusOr<Edtd> schema = ImportXsd(*xml);
    if (!schema.ok()) return Fail(schema.status());
    std::cout << SchemaToText(ReduceEdtd(*schema));
    return 0;
  }
  return Usage();
}

}  // namespace
}  // namespace stap

int main(int argc, char** argv) { return stap::Run(argc, argv); }
